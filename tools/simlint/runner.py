"""SimLint driver: file discovery, suppressions, baseline, and output.

The runner walks the requested paths, runs every registered rule over each
Python file, silences findings covered by justified inline suppressions or
by the committed baseline, and renders the remainder as text or JSON.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .report import Finding, Suppression, parse_suppression, unexplained_finding
from .rules import ALL_RULES, ModuleAnalysis

__all__ = ["LintResult", "lint_source", "lint_file", "lint_paths", "main"]

#: Marker comment that opts a file outside ``repro/sim`` into the sim-core
#: rules (how the lint fixtures exercise SIM001/SIM003/SIM004/SIM006).
SIM_CORE_MARKER = "# simlint: sim-core"

#: Default committed baseline, relative to this package.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


@dataclass
class LintResult:
    """Outcome of one lint run: live findings plus bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    #: Findings silenced by an inline suppression (kept for reporting).
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings silenced by the committed baseline.
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def extend(self, other: "LintResult") -> None:
        """Fold another (single-file) result into this one."""
        self.findings.extend(other.findings)
        self.suppressions.extend(other.suppressions)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked

    @property
    def ok(self) -> bool:
        """True when the run is clean (exit status 0)."""
        return not self.findings

    def as_dict(self) -> dict:
        """Plain-data view backing ``--format json``."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "baselined": [f.as_dict() for f in self.baselined],
            "suppressions": [s.as_dict() for s in self.suppressions],
        }


def _is_sim_core(path: str, source: str) -> bool:
    """Whether the sim-core-only rules apply to this file.

    The opt-in marker must be a standalone comment line, so prose that
    merely *mentions* the marker (this package's own docs) does not opt
    a file in.
    """
    normalized = path.replace("\\", "/")
    if "repro/sim" in normalized:
        return True
    return any(line.strip().startswith(SIM_CORE_MARKER)
               for line in source.splitlines())


def _collect_suppressions(path: str, lines: Sequence[str]) -> List[Suppression]:
    """Every inline ``# simlint: disable=...`` comment in the file."""
    suppressions = []
    for number, text in enumerate(lines, start=1):
        standalone = text.lstrip().startswith("#")
        suppression = parse_suppression(path, number, text, standalone)
        if suppression is not None:
            suppressions.append(suppression)
    return suppressions


def lint_source(path: str, source: str,
                baseline: Optional[Iterable[Tuple[str, str, str]]] = None) -> LintResult:
    """Lint one file's source text; ``path`` is used for provenance only."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path=path, line=exc.lineno or 1, col=exc.offset or 0,
            rule="SIM999", message=f"file does not parse: {exc.msg}"))
        return result

    lines = tuple(source.splitlines())
    sim_core = _is_sim_core(path, source)
    analysis = ModuleAnalysis(tree)
    raw: List[Finding] = []
    for rule_class in ALL_RULES:
        if rule_class.sim_core_only and not sim_core:
            continue
        rule_class(path, lines, analysis, raw).check(tree)
    raw.sort(key=lambda f: (f.line, f.col, f.rule))

    suppressions = _collect_suppressions(path, lines)
    result.suppressions = suppressions
    baseline_keys = set(baseline or ())

    for finding in raw:
        cover = next((s for s in suppressions
                      if s.covers(finding.rule, finding.line)), None)
        if cover is not None:
            result.suppressed.append(finding)
        elif finding.key() in baseline_keys:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    # A disable comment must explain itself: bare suppressions are findings.
    for suppression in suppressions:
        if not suppression.justified:
            result.findings.append(unexplained_finding(suppression))
    return result


def lint_file(path: Path,
              baseline: Optional[Iterable[Tuple[str, str, str]]] = None) -> LintResult:
    """Lint one file on disk."""
    rel = _display_path(path)
    return lint_source(rel, path.read_text(encoding="utf-8"), baseline)


def _display_path(path: Path) -> str:
    """Stable, cwd-relative, forward-slash rendering used in keys/output."""
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(Path.cwd())
    except ValueError:
        rel = resolved
    return rel.as_posix()


def discover(paths: Sequence[Path]) -> List[Path]:
    """All ``*.py`` files under ``paths``, sorted, skipping ``__pycache__``."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(p for p in sorted(path.rglob("*.py"))
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.append(path)
    return sorted(set(found), key=lambda p: p.as_posix())


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Read the committed baseline (list of ``[path, rule, snippet]`` keys)."""
    if not path.exists():
        return []
    entries = json.loads(path.read_text(encoding="utf-8"))
    return [tuple(entry) for entry in entries]


def lint_paths(paths: Sequence[Path],
               baseline: Optional[Iterable[Tuple[str, str, str]]] = None) -> LintResult:
    """Lint every Python file under ``paths`` into one aggregate result."""
    total = LintResult()
    for file_path in discover(paths):
        total.extend(lint_file(file_path, baseline))
    return total


def _render_text(result: LintResult, stream) -> None:
    for finding in result.findings:
        print(finding.render(), file=stream)
    summary = (f"simlint: {len(result.findings)} finding(s) in "
               f"{result.files_checked} file(s)")
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    print(summary, file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m tools.simlint``). Returns exit status."""
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Determinism lint pass for the simulator core.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline with the current findings "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = "sim-core" if rule.sim_core_only else "all files"
            print(f"{rule.id}  [{scope}]  {rule.title}")
        return 0

    baseline = load_baseline(args.baseline)
    result = lint_paths([Path(p) for p in args.paths], baseline)

    if args.write_baseline:
        keys = sorted({f.key() for f in result.findings + result.baselined})
        args.baseline.write_text(
            json.dumps([list(k) for k in keys], indent=2) + "\n", encoding="utf-8")
        print(f"simlint: wrote {len(keys)} baseline entr(y/ies) to {args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        _render_text(result, sys.stdout)
    return 0 if result.ok else 1

"""SimLint: a determinism lint pass for the simulator core.

The cluster simulator's headline guarantees are *invariants* — bit-identical
fast-forward replay, byte-conserving re-flow, worker-count-independent sweep
output.  Those invariants die quietly when nondeterminism leaks into the
code: a wall-clock read inside the event loop, an unseeded global RNG, a
``set`` whose iteration order feeds event scheduling.  SimLint statically
forbids those bug classes with a plugin-based AST analyzer where every rule
is a visitor class with a stable id:

========  ==============================================================
SIM001    no wall-clock reads inside ``repro.sim`` (sim time must flow
          from the event loop)
SIM002    no unseeded global ``random`` / ``numpy.random`` state
SIM003    unordered-iteration hazard: iterating (or declaring) a ``set``
          whose elements can feed event scheduling or output ordering
SIM004    float ``==`` / ``!=`` on simulated timestamps (use the
          ``repro.sim.simtime`` tolerance helpers, or justify exactness)
SIM005    mutable default arguments
SIM006    missing type annotations / docstrings on ``repro.sim`` public API
========  ==============================================================

Findings can be suppressed inline with a *justified* comment::

    busy = time.time()  # simlint: disable=SIM001 -- host-side profiling only

A ``disable`` without the ``-- justification`` text is itself reported
(SIM000), so every suppression in the tree explains itself.  A committed
baseline file (``tools/simlint/baseline.json``) grandfathers known findings
during incremental adoption.  Run it as::

    python -m tools.simlint src/            # text output, exit 1 on findings
    python -m tools.simlint src/ --format json
    repro lint                              # the CLI dispatcher

See ``docs/correctness.md`` for every rule's rationale and fix pattern.
"""

from .report import Finding, Suppression
from .rules import ALL_RULES, Rule, rule_index
from .runner import LintResult, lint_file, lint_paths, lint_source, main

__all__ = [
    "Finding",
    "Suppression",
    "Rule",
    "ALL_RULES",
    "rule_index",
    "LintResult",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]

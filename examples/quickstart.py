"""Quickstart: train a ResNet with Egeria and compare against full training.

Runs the smallest end-to-end Egeria workflow:

1. build a synthetic CIFAR-like workload (ResNet-8 backbone scaled from the
   paper's ResNet-56 setup);
2. train it once with the vanilla baseline and once with Egeria's
   knowledge-guided layer freezing;
3. print the freezing timeline, the accuracy of both runs, and the
   time-to-accuracy speedup.

Run with::

    python examples/quickstart.py
"""

from repro.experiments import build_workload, compare_systems, format_rows, run_trainer


def main() -> None:
    workload = build_workload("resnet56_cifar10", scale="tiny", seed=0)
    print(f"Workload: {workload.paper_model} on {workload.train_dataset.parent.__class__.__name__} "
          f"({workload.num_epochs} epochs, batch size {workload.batch_size})")

    print("\nTraining vanilla baseline and Egeria ...")
    rows = compare_systems(workload, systems=("vanilla", "egeria"))
    print(format_rows(rows))

    print("\nEgeria freezing timeline:")
    egeria_run = run_trainer("egeria", workload)
    for event in egeria_run["timeline"]:
        print(f"  iteration {event['iteration']:>4}: {event['action']:<9} {event['module']:<20} "
              f"active params {event['active_parameter_fraction']:.0%}")

    summary = egeria_run["summary"]
    print(f"\nFinal frozen fraction: {summary['frozen_fraction']:.0%}")
    print(f"Plasticity evaluations: {summary['controller']['evaluations_done']}")
    print(f"Forward passes served from the activation cache: {summary['fp_skipped_iterations']}")


if __name__ == "__main__":
    main()

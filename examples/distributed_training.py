"""Distributed data-parallel training with Egeria's reduced synchronization.

Reproduces the Figure 10 setup of the paper: a 5-machine, 2-GPU-per-machine
leaf–spine cluster training ResNet-50 with ring all-reduce.  The example
compares per-iteration timelines and throughput for:

* the vanilla framework schedule,
* ByteScheduler's priority-based communication scheduling,
* Egeria (frozen layers skipped in backward compute *and* synchronization),
* Egeria combined with ByteScheduler.

Everything here is the analytical simulation substrate — no GPUs required.

Run with::

    python examples/distributed_training.py
"""

from repro.baselines import DistributedThroughputComparison
from repro.core import parse_layer_modules
from repro.experiments import build_workload
from repro.sim import (
    AllReduceModel,
    ClusterScheduler,
    CostModel,
    SchedulePolicy,
    SimJob,
    TimelineSimulator,
    paper_testbed_cluster,
)


def main() -> None:
    workload = build_workload("resnet50_imagenet", scale="tiny", seed=0)
    model = workload.make_model()
    layer_modules = parse_layer_modules(model)
    cluster = paper_testbed_cluster()
    print("Cluster:", cluster.describe())

    # Per-iteration timeline at 3 machines with the first few modules frozen.
    workers = cluster.workers(num_machines=3, gpus_per_machine=2)
    cost_model = CostModel(layer_modules, batch_size=workload.batch_size)
    simulator = TimelineSimulator(layer_modules, cost_model, AllReduceModel(cluster), workers)
    print("\nPer-iteration timeline on 3 machines (frozen prefix = 4 modules):")
    for policy in SchedulePolicy.ALL:
        timeline = simulator.simulate(policy, frozen_prefix=4, cached_fp=True)
        print(f"  {policy:<22} forward={timeline.forward * 1e3:7.3f}ms backward={timeline.backward * 1e3:7.3f}ms "
              f"comm={timeline.communication * 1e3:7.3f}ms exposed={timeline.exposed_communication * 1e3:7.3f}ms "
              f"total={timeline.total * 1e3:7.3f}ms")

    # Throughput scaling across 2-5 machines (the Figure 10 x-axis).
    comparison = DistributedThroughputComparison(layer_modules, batch_size=workload.batch_size, cluster=cluster)
    print("\nThroughput (samples/s) vs number of machines:")
    header = f"{'machines':>9} " + " ".join(f"{p:>22}" for p in SchedulePolicy.ALL)
    print(header)
    for row in comparison.scaling_sweep([2, 3, 4, 5], frozen_prefix=4, cached_fp=True):
        cells = " ".join(f"{row[p]:>22.0f}" for p in SchedulePolicy.ALL)
        print(f"{int(row['num_machines']):>9} {cells}")

    # Beyond the paper: several jobs share the cluster on the event-driven
    # engine — one GPU is a straggler, a third job queues for free GPUs.
    scheduler = ClusterScheduler(cluster, placement="round_robin")
    scheduler.set_gpu_speed("node0:gpu0", 0.6)
    scheduler.submit(SimJob("egeria", cost_model, num_workers=4, iterations=50,
                            policy=SchedulePolicy.EGERIA, frozen_prefix=4, cached_fp=True))
    scheduler.submit(SimJob("vanilla", cost_model, num_workers=4, iterations=50))
    scheduler.submit(SimJob("queued", cost_model, num_workers=4, iterations=25))
    result = scheduler.run()
    print("\nMulti-job schedule (round-robin placement, node0:gpu0 at 0.6x speed):")
    for name in sorted(result.jobs):
        record = result.jobs[name]
        print(f"  {name:<8} start={record.start_time * 1e3:8.3f}ms finish={record.finish_time * 1e3:8.3f}ms "
              f"queued={record.queueing_delay * 1e3:7.3f}ms throughput={record.throughput():10.0f} samples/s")
    print(f"  makespan={result.makespan * 1e3:.3f}ms")


if __name__ == "__main__":
    main()

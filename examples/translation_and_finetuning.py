"""Egeria on NLP workloads: Transformer translation and BERT fine-tuning.

Reproduces the two language workloads of the paper's evaluation at miniature
scale:

* machine translation with an encoder–decoder Transformer (the paper's
  Transformer-Base/Tiny on WMT16) — Egeria freezes front *encoder* layers;
* extractive question answering by fine-tuning a pre-trained BERT-lite (the
  paper's BERT on SQuAD 1.0) — the fine-tuning regime where freezing pays off
  almost immediately.

Run with::

    python examples/translation_and_finetuning.py
"""

from repro.experiments import build_workload, run_trainer


def show_run(title: str, result) -> None:
    history = result["history"]
    print(f"\n--- {title} ---")
    print(f"metric per epoch: {[round(m, 2) for m in history.metrics()]}")
    print(f"frozen fraction per epoch: {[round(f, 2) for f in history.frozen_fractions()]}")
    print(f"final metric: {result['final_metric']:.3f}   simulated time: {result['simulated_time']:.4f}s")
    if result.get("timeline"):
        frozen_modules = [e["module"] for e in result["timeline"] if e["action"] in ("freeze", "refreeze")]
        print(f"frozen modules (in order): {frozen_modules}")


def main() -> None:
    # Machine translation: Transformer-Tiny on the synthetic WMT16 stand-in.
    translation = build_workload("transformer_tiny_wmt16", scale="tiny", seed=0)
    print(f"Translation workload: {translation.paper_model}, {translation.num_epochs} epochs")
    baseline = run_trainer("vanilla", translation)
    egeria = run_trainer("egeria", translation)
    show_run("Transformer-Tiny, vanilla (perplexity, lower is better)", baseline)
    show_run("Transformer-Tiny, Egeria", egeria)

    # Question answering: fine-tune a pre-trained BERT-lite on synthetic SQuAD.
    qa = build_workload("bert_squad", scale="tiny", seed=0)
    print(f"\nQA workload: {qa.paper_model}, {qa.num_epochs} epochs (fine-tuning)")
    qa_baseline = run_trainer("vanilla", qa)
    qa_egeria = run_trainer("egeria", qa)
    show_run("BERT fine-tuning, vanilla (span F1)", qa_baseline)
    show_run("BERT fine-tuning, Egeria", qa_egeria)


if __name__ == "__main__":
    main()

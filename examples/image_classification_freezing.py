"""Image classification with Egeria, step by step (no experiment harness).

This example wires Egeria's components together by hand — the same things the
:class:`repro.core.EgeriaTrainer` does internally — so you can see where each
piece of the paper shows up:

* layer-module parsing (§5),
* the bootstrapping / knowledge-guided stages (§3, Figure 3),
* plasticity evaluation with the quantized reference model (§4.1, §4.2),
* freezing/unfreezing driven by the LR schedule (§4.2.2),
* activation caching with prefetching (§4.3).

Run with::

    python examples/image_classification_freezing.py
"""

import numpy as np

from repro import models, optim
from repro.core import ClassificationTask, EgeriaConfig, EgeriaTrainer, parse_layer_modules
from repro.data import DataLoader, make_dataset


def main() -> None:
    # 1. Data: a synthetic CIFAR-10 stand-in split into train/validation.
    dataset = make_dataset("synthetic_cifar10", num_samples=160, num_classes=10,
                           image_size=8, noise=2.0, seed=0)
    train_set, eval_set = dataset.split(eval_fraction=0.2)
    train_loader = DataLoader(train_set, batch_size=16, seed=0)
    eval_loader = DataLoader(eval_set, batch_size=16, shuffle=False)

    # 2. Model: a CIFAR-style ResNet; the factory is reused for the reference model.
    def model_factory():
        return models.CifarResNet(depth=20, num_classes=10, width=0.75, seed=0)

    model = model_factory()
    layer_modules = parse_layer_modules(model)
    print("Layer modules (freezing granularity):")
    for module in layer_modules:
        print(f"  [{module.index}] {module.name:<22} {module.num_params:>8} params")

    # 3. Optimizer and step-decay LR schedule (drops trigger unfreezing).
    optimizer = optim.SGD(model.parameters(), lr=0.15, momentum=0.9, weight_decay=5e-4)
    scheduler = optim.MultiStepLR(optimizer, milestones=[12, 17], gamma=0.1)

    # 4. Egeria configuration: evaluation interval n, window W, tolerance T.
    config = EgeriaConfig(eval_interval_iters=2, freeze_window=2, bootstrap_min_evaluations=2,
                          reference_precision="int8")

    trainer = EgeriaTrainer(model, model_factory, ClassificationTask(), train_loader, eval_loader,
                            optimizer, scheduler, config=config)
    history = trainer.fit(num_epochs=20)

    # 5. Report what happened.
    print("\nEpoch  accuracy  frozen%  sim-time(s)")
    for record in history.records:
        print(f"{record.epoch:>5}  {record.metric:>8.3f}  {record.frozen_fraction:>6.0%}  "
              f"{record.simulated_time:>10.4f}")

    print("\nFreeze/unfreeze events:")
    for event in trainer.freezing_timeline():
        print(f"  iter {event['iteration']:>4}: {event['action']:<9} {event['module']}")

    print(f"\nCache statistics: {trainer.cache.stats.as_dict()}")
    print(f"Final validation accuracy: {history.final_metric():.3f}")
    trainer.close()


if __name__ == "__main__":
    main()

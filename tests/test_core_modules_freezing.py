"""Tests for layer-module parsing and the Algorithm 1 freezing engine."""

import numpy as np
import pytest

from repro import models
from repro.core import (
    EgeriaConfig,
    FreezingEngine,
    LayerModule,
    active_parameter_fraction,
    building_blocks,
    parse_layer_modules,
)


class TestLayerModuleParsing:
    def test_uses_module_sequence(self, tiny_model):
        paths = building_blocks(tiny_model)
        assert paths == tiny_model.module_sequence

    def test_pattern_filter(self, tiny_model):
        paths = building_blocks(tiny_model, pattern=r"layer\d")
        assert all(p.startswith("layer") for p in paths)
        with pytest.raises(ValueError):
            building_blocks(tiny_model, pattern="no_such_block")

    def test_excludes_classifier_head(self, tiny_model):
        modules = parse_layer_modules(tiny_model)
        assert all("fc" not in m.paths for m in modules)

    def test_front_to_back_order_and_indices(self, tiny_layer_modules):
        assert [m.index for m in tiny_layer_modules] == list(range(len(tiny_layer_modules)))
        assert tiny_layer_modules[0].paths[0] == "conv1"

    def test_large_stage_split_by_max_fraction(self):
        model = models.resnet56()
        modules = parse_layer_modules(model, max_fraction=0.2)
        total = sum(m.num_params for m in modules)
        # No group (except possibly a single indivisible block) exceeds ~the budget.
        for module in modules:
            if len(module.paths) > 1:
                assert module.num_params <= total * 0.25
        # Stage 3 is split into several modules while stage 1 groups whole.
        stage3_groups = [m for m in modules if m.paths[0].startswith("layer3")]
        stage1_groups = [m for m in modules if m.paths[0].startswith("layer1")]
        assert len(stage3_groups) >= len(stage1_groups)

    def test_groups_never_cross_stage_boundaries(self):
        model = models.resnet20()
        for module in parse_layer_modules(model, max_fraction=0.9):
            stages = {p.split(".")[0] for p in module.paths}
            assert len(stages) == 1

    def test_freeze_unfreeze_roundtrip(self, tiny_layer_modules, tiny_model):
        module = tiny_layer_modules[1]
        assert not module.is_frozen()
        module.freeze()
        assert module.is_frozen()
        assert active_parameter_fraction(tiny_layer_modules, tiny_model) < 1.0
        module.unfreeze()
        assert not module.is_frozen()
        assert active_parameter_fraction(tiny_layer_modules, tiny_model) == 1.0

    def test_tail_path_resolves(self, tiny_model, tiny_layer_modules):
        for module in tiny_layer_modules:
            assert tiny_model.get_submodule(module.tail_path) is module.tail_block

    def test_transformer_modules_are_encoder_decoder_layers(self):
        model = models.transformer_tiny()
        modules = parse_layer_modules(model)
        joined = [p for m in modules for p in m.paths]
        assert any(p.startswith("encoder.") for p in joined)
        assert any(p.startswith("decoder.") for p in joined)


def converged_engine(layer_modules, window=2, **config_kwargs):
    config = EgeriaConfig(freeze_window=window, eval_interval_iters=1, **config_kwargs)
    return FreezingEngine(layer_modules, config)


def feed_stationary(engine, iterations, start=0):
    """Feed identical activations so plasticity is zero/stationary."""
    rng = np.random.default_rng(0)
    activation = rng.standard_normal((4, 8)).astype(np.float32)
    for i in range(start, start + iterations):
        engine.check_plasticity(activation, activation, iteration=i)


class TestFreezingEngine:
    def test_monitors_frontmost_module(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules)
        assert engine.monitored_module is tiny_layer_modules[0]

    def test_freezes_after_w_stationary_evaluations(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=3)
        feed_stationary(engine, iterations=10)
        assert tiny_layer_modules[0].is_frozen()
        assert engine.frontmost_active >= 1
        assert engine.events[0].action == "freeze"

    def test_oscillating_plasticity_does_not_freeze(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=3)
        rng = np.random.default_rng(0)
        base = rng.standard_normal((4, 8)).astype(np.float32)
        for i in range(12):
            # Alternate between very different reference activations -> large slope.
            ref = base * (1.0 + 5.0 * (i % 2)) + rng.standard_normal(base.shape).astype(np.float32) * i
            engine.check_plasticity(base, ref, iteration=i)
        assert engine.num_frozen() == 0

    def test_progressive_front_to_back_freezing(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=2)
        feed_stationary(engine, iterations=40)
        frozen_indices = [e.module_index for e in engine.events if e.action == "freeze"]
        assert frozen_indices == sorted(frozen_indices)
        assert engine.num_frozen() >= 2

    def test_last_module_never_frozen(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        feed_stationary(engine, iterations=100)
        assert not tiny_layer_modules[-1].is_frozen()
        assert engine.monitored_module is None  # all freezable modules done

    def test_frozen_prefix_length(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        feed_stationary(engine, iterations=20)
        assert engine.frozen_prefix_length() == engine.num_frozen()

    def test_unfreeze_on_lr_drop(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=10)
        assert engine.num_frozen() > 0
        window_before = engine.window
        unfroze = engine.observe_lr(0.1 / 10, iteration=50)
        assert unfroze
        assert engine.num_frozen() == 0
        assert engine.frontmost_active == 0
        assert engine.window <= window_before
        assert any(e.action == "unfreeze" for e in engine.events)

    def test_no_unfreeze_for_small_lr_drop(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=10)
        assert not engine.observe_lr(0.05, iteration=20)
        assert engine.num_frozen() > 0

    def test_refreeze_events_after_unfreeze(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=2)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=20)
        engine.observe_lr(0.005, iteration=30)
        feed_stationary(engine, iterations=20, start=31)
        assert any(e.action == "refreeze" for e in engine.events)

    def test_cyclical_lr_uses_custom_unfreeze(self, tiny_layer_modules):
        calls = []
        engine = FreezingEngine(tiny_layer_modules, EgeriaConfig(freeze_window=1),
                                custom_unfreeze=lambda eng, it: calls.append(it))
        feed_stationary(engine, iterations=10)
        engine.observe_lr(0.01, iteration=20, cyclical=True)
        assert calls == [20]
        # Cyclical schedules never trigger the 10x-drop rule implicitly.
        assert engine.num_frozen() > 0

    def test_frozen_parameter_fraction_and_summary(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        feed_stationary(engine, iterations=6)
        assert 0.0 < engine.frozen_parameter_fraction() <= 1.0
        summary = engine.summary()
        assert summary["num_frozen"] == engine.num_frozen()
        assert summary["num_modules"] == len(tiny_layer_modules)

    def test_timeline_dicts(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=1)
        feed_stationary(engine, iterations=6)
        timeline = engine.timeline()
        assert timeline and {"iteration", "action", "module", "active_parameter_fraction"} <= set(timeline[0])

    def test_empty_modules_rejected(self):
        with pytest.raises(ValueError):
            FreezingEngine([], EgeriaConfig())


class TestUnfreezeRefreezeCycle:
    """Coverage of the full unfreeze -> refreeze life cycle (§4.2.2)."""

    def test_window_halves_on_each_unfreeze(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=4)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=30)
        assert engine.num_frozen() > 0
        engine.observe_lr(0.01, iteration=40)          # 10x drop -> unfreeze
        assert engine.window == 2                       # 4 * 0.5
        feed_stationary(engine, iterations=30, start=41)
        engine.observe_lr(0.001, iteration=80)          # second unfreeze
        assert engine.window == 1                       # halved again
        # The window never collapses below one evaluation.
        feed_stationary(engine, iterations=10, start=81)
        engine.observe_lr(0.0001, iteration=100)
        assert engine.window == 1

    def test_trackers_adopt_halved_window(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=4)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=30)
        engine.observe_lr(0.01, iteration=40)
        assert all(tracker.window == engine.window for tracker in engine.trackers.values())

    def test_refreeze_events_labelled_refreeze(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=2)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=20)
        first_cycle = [e.action for e in engine.events]
        assert set(first_cycle) == {"freeze"}           # first cycle: plain freezes
        engine.observe_lr(0.01, iteration=30)
        feed_stationary(engine, iterations=20, start=31)
        actions = [e.action for e in engine.events]
        assert "unfreeze" in actions
        # Every post-unfreeze freezing decision is labelled "refreeze".
        post_unfreeze = actions[actions.index("unfreeze") + 1:]
        assert post_unfreeze and set(post_unfreeze) == {"refreeze"}
        # Refreezing restarts from the front module.
        refreeze_events = [e for e in engine.events if e.action == "refreeze"]
        assert refreeze_events[0].module_index == 0

    def test_tolerance_retained_across_reset_history(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=2)
        engine.observe_lr(0.1, iteration=0)
        feed_stationary(engine, iterations=20)
        tolerances = {index: tracker.tolerance for index, tracker in engine.trackers.items()
                      if tracker.tolerance is not None}
        assert tolerances                                # calibration happened
        engine.observe_lr(0.01, iteration=30)            # unfreeze resets histories
        for index, tracker in engine.trackers.items():
            assert len(tracker) == 0                     # history cleared ...
            if index in tolerances:
                assert tracker.tolerance == tolerances[index]  # ... tolerance kept
        # With T retained, stationary readings refreeze without recalibration.
        feed_stationary(engine, iterations=10, start=31)
        assert engine.num_frozen() > 0

    def test_reset_history_can_drop_tolerance(self, tiny_layer_modules):
        engine = converged_engine(tiny_layer_modules, window=2)
        feed_stationary(engine, iterations=10)
        tracker = next(t for t in engine.trackers.values() if t.tolerance is not None)
        tracker.reset_history(keep_tolerance=False)
        assert tracker.tolerance is None
        assert len(tracker) == 0


class TestEgeriaConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EgeriaConfig(eval_interval_iters=0)
        with pytest.raises(ValueError):
            EgeriaConfig(tolerance_coefficient=1.5)
        with pytest.raises(ValueError):
            EgeriaConfig(unfreeze_lr_drop_factor=1.0)
        with pytest.raises(ValueError):
            EgeriaConfig(reference_precision="int2")

    def test_recommended_eval_interval_matches_paper_example(self):
        """§4.2.2: ResNet-56, 7 modules, W=10, ~78k iterations -> n ~= 300."""
        n = EgeriaConfig.recommended_eval_interval(78_000, num_layer_modules=7, freeze_window=10)
        assert 250 <= n <= 350

    def test_scaled_for(self):
        config = EgeriaConfig(freeze_window=10)
        scaled = config.scaled_for(total_iterations=78_000, num_layer_modules=7)
        assert scaled.eval_interval_iters == EgeriaConfig.recommended_eval_interval(78_000, 7, 10)

"""SimScope observability tests: transparency, schema, conservation, CLI.

The contract mirrors SimSan's: an attached observer must be *invisible* to
the simulation (bit-identical results at the engine, the scheduler and the
full fault-injection scenario level) while the exported artifacts are honest
— the trace passes the Chrome ``trace_event`` schema checker, the metrics
pass counter monotonicity and the byte-conservation cross-check against the
resource-timeline audit, and the sweep's per-cell metrics are identical at
every worker count.  The mutation tests corrupt exports the way a real bug
would and assert the checkers catch it.
"""

import copy
import json

import pytest

from repro.core.modules import LayerModule
from repro.sim import (
    ClusterScheduler,
    CostModel,
    EventDrivenEngine,
    MetricsRegistry,
    SimJob,
    SimObserver,
    Tracer,
    check_metrics,
    check_trace,
    paper_testbed_cluster,
    profile_scenario,
    run_scenario,
    run_sweep,
)

#: A fault-injection scenario exercising every observer hook: two jobs on a
#: per-ToR fabric with checkpoints, a GPU failure with recovery, and a
#: preempt/resume cycle (mirrors ``examples/scenario_faults.json``).
FAULT_SCENARIO = {
    "cluster": {"num_machines": 4, "gpus_per_machine": 2, "num_tor_switches": 2,
                "nic_gbps": 1.0, "tor_uplink_gbps": 1.0, "core_gbps": 0.5,
                "per_tor_fabric": True},
    "placement": "round_robin",
    "jobs": [
        {"name": "a", "modules": [400000, 800000, 600000], "batch_size": 4,
         "num_workers": 4, "iterations": 10, "policy": "egeria",
         "frozen_prefix": 1, "checkpoint_every": 4, "storage": "ckpt-store"},
        {"name": "b", "modules": [500000, 500000, 500000], "batch_size": 4,
         "num_workers": 4, "iterations": 10, "arrival_time": 0.5,
         "checkpoint_every": 5, "storage": "ckpt-store"},
    ],
    "failures": [{"gpu": "node0:gpu0", "at_time": 1.0, "recover_at": 1.8}],
    "preemptions": [{"job": "b", "at_time": 1.2}],
    "resumes": [{"job": "b", "at_time": 1.9}],
}


def _cost_model(num_modules=4, num_params=50_000):
    modules = [LayerModule(name=f"m{i}", paths=[], blocks=[],
                           num_params=num_params, index=i)
               for i in range(num_modules)]
    return CostModel(modules, batch_size=32)


def _scenario(**overrides):
    spec = copy.deepcopy(FAULT_SCENARIO)
    spec.update(overrides)
    return spec


def _comparable(report):
    return json.dumps({key: value for key, value in report.items()
                       if key != "metrics"}, sort_keys=True)


# --------------------------------------------------------------------------- #
# Tracer unit behaviour
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_spans_and_instants_render_to_valid_chrome_trace(self):
        tracer = Tracer()
        tracer.span("job", "a", "iteration", 0.0, 1.5, {"mode": "live"})
        tracer.span("job", "a", "queued", 2.0, 2.5)
        tracer.instant("job", "a", "checkpoint", 1.5)
        tracer.span("resource", "fabric", "allreduce", 0.5, 1.0, {"num_bytes": 10})
        assert tracer.num_events() == 4
        assert tracer.tracks() == [("job", "a"), ("resource", "fabric")]
        trace = tracer.as_dict()
        assert check_trace(trace) == []

    def test_metadata_names_every_used_track(self):
        tracer = Tracer()
        tracer.instant("cluster", "node0:gpu0", "gpu_failure", 3.0)
        events = tracer.events()
        metadata = [event for event in events if event["ph"] == "M"]
        assert {event["name"] for event in metadata} == {"process_name", "thread_name"}
        assert metadata[0]["args"]["name"] == "cluster"
        assert metadata[1]["args"]["name"] == "node0:gpu0"

    def test_timestamps_are_microseconds_and_monotone_per_track(self):
        tracer = Tracer()
        tracer.span("job", "a", "late", 2.0, 3.0)
        tracer.span("job", "a", "early", 0.5, 1.0)
        timed = [event for event in tracer.events() if event["ph"] != "M"]
        assert [event["ts"] for event in timed] == [0.5e6, 2.0e6]
        assert timed[0]["dur"] == 0.5e6

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = Tracer()
        tracer.span("job", "a", "iteration", 0.0, 1.0)
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == tracer.as_dict()
        assert check_trace(loaded) == []


# --------------------------------------------------------------------------- #
# Metrics registry unit behaviour
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_and_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.counter_add("bytes", 0.0, 10.0)
        registry.counter_add("bytes", 1.0, 5.0)
        registry.gauge_set("depth", 0.0, 3.0)
        registry.gauge_set("depth", 1.0, 1.0)
        assert registry.get("bytes").values() == [10.0, 15.0]
        assert registry.get("depth").last == 1.0
        assert check_metrics(registry.as_dict()) == []

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter_add("x", 0.0, 1.0)
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge_set("x", 1.0, 2.0)

    def test_summary_statistics(self):
        registry = MetricsRegistry()
        registry.observe("wait", 0.0, 1.0)
        registry.observe("wait", 1.0, 3.0)
        summary = registry.summary()["wait"]
        assert summary["kind"] == "histogram"
        assert summary["num_samples"] == 2
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_csv_and_json_export(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter_add("bytes", 0.5, 7.0)
        csv_path = tmp_path / "metrics.csv"
        json_path = tmp_path / "metrics.json"
        registry.write(str(csv_path))
        registry.write(str(json_path))
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "metric,kind,time,value"
        assert lines[1] == "bytes,counter,0.5,7.0"
        assert json.loads(json_path.read_text()) == registry.as_dict()


# --------------------------------------------------------------------------- #
# Checker mutation tests: corrupted exports are caught
# --------------------------------------------------------------------------- #
class TestCheckers:
    def test_partial_overlap_on_a_job_track_is_caught(self):
        tracer = Tracer()
        tracer.span("job", "a", "first", 0.0, 2.0)
        tracer.span("job", "a", "second", 1.0, 3.0)
        problems = check_trace(tracer.as_dict())
        assert any("partially overlaps" in problem for problem in problems)

    def test_overlap_on_a_resource_track_is_allowed(self):
        """Fair-share windows overlap by design; only job tracks must nest."""
        tracer = Tracer()
        tracer.span("resource", "fabric", "first", 0.0, 2.0)
        tracer.span("resource", "fabric", "second", 1.0, 3.0)
        assert check_trace(tracer.as_dict()) == []

    def test_missing_track_metadata_is_caught(self):
        trace = {"traceEvents": [
            {"name": "iteration", "cat": "job", "ph": "X", "ts": 0.0, "dur": 1.0,
             "pid": 1, "tid": 1}]}
        problems = check_trace(trace)
        assert any("process_name" in problem for problem in problems)
        assert any("thread_name" in problem for problem in problems)

    def test_backwards_timestamps_are_caught(self):
        trace = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "job"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "a"}},
            {"name": "late", "cat": "job", "ph": "i", "ts": 5.0, "pid": 1, "tid": 1, "s": "t"},
            {"name": "early", "cat": "job", "ph": "i", "ts": 1.0, "pid": 1, "tid": 1, "s": "t"},
        ]}
        assert any("goes backwards" in problem for problem in check_trace(trace))

    def test_decreasing_counter_is_caught(self):
        metrics = {"metrics": {"bytes": {"kind": "counter",
                                         "samples": [[0.0, 10.0], [1.0, 5.0]]}}}
        assert any("counter decreases" in problem for problem in check_metrics(metrics))

    def test_byte_conservation_mismatch_is_caught(self):
        metrics = {"metrics": {"resource.bytes.fabric": {
            "kind": "counter", "samples": [[0.0, 10.0]]}}}
        report = {"resources": {"fabric": {"total_bytes": 999}}}
        problems = check_metrics(metrics, report)
        assert any("traced total 10 != audited total 999" in problem
                   for problem in problems)

    def test_missing_byte_counter_is_caught(self):
        metrics = {"metrics": {}}
        report = {"resources": {"fabric": {"total_bytes": 999}}}
        problems = check_metrics(metrics, report)
        assert any("absent" in problem for problem in problems)


# --------------------------------------------------------------------------- #
# Transparency: observed runs are bit-identical to plain runs
# --------------------------------------------------------------------------- #
class TestTransparency:
    def test_engine_results_identical_with_observer(self):
        cost_model = _cost_model()

        def stream(engine):
            results = []
            for iteration in range(30):
                prefix = min(iteration // 10, 3)
                result = engine.simulate_iteration(
                    cost_model, frozen_prefix=prefix, cached_fp=prefix > 0,
                    comm_seconds_per_byte=1e-9)
                results.append(result.as_dict())
            return results

        plain = stream(EventDrivenEngine())
        observer = SimObserver()
        observed_engine = EventDrivenEngine(observe=observer)
        observed = stream(observed_engine)
        assert observed == plain
        observer.finalize(observed_engine.resources)
        assert observer.tracer.num_events() > 0
        assert observer.metrics.get("engine.iterations_live").last > 0

    def test_scheduler_results_identical_with_observer(self):
        def run(observe):
            engine = EventDrivenEngine(paper_testbed_cluster(), observe=observe)
            scheduler = ClusterScheduler(paper_testbed_cluster(), engine=engine)
            for name in ("a", "b"):
                scheduler.submit(SimJob(name=name, cost_model=_cost_model(),
                                        num_workers=2, iterations=6,
                                        checkpoint_every=3))
            return scheduler.run().as_dict()

        plain = run(None)
        observed = run(SimObserver())
        assert json.dumps(observed, sort_keys=True) == json.dumps(plain, sort_keys=True)

    def test_fault_scenario_identical_with_observer(self):
        plain = run_scenario(_scenario())
        observed = run_scenario(_scenario(observe=True))
        assert "metrics" not in plain
        assert observed["metrics"]
        assert _comparable(observed) == _comparable(plain)

    def test_null_sink_records_nothing_but_stays_identical(self):
        plain = run_scenario(_scenario())
        null = run_scenario(_scenario(observe={"trace": False, "metrics": False}))
        assert "metrics" not in null
        assert _comparable(null) == _comparable(plain)

    def test_observe_key_rejects_unknown_pillars(self):
        with pytest.raises(ValueError, match="observe"):
            run_scenario(_scenario(observe={"tracing": True}))


# --------------------------------------------------------------------------- #
# Scenario exports: schema-valid trace, conserving metrics
# --------------------------------------------------------------------------- #
class TestScenarioExports:
    def test_fault_scenario_trace_and_metrics_validate(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        report = run_scenario(_scenario(), trace_out=str(trace_path),
                              metrics_out=str(metrics_path))
        trace = json.loads(trace_path.read_text())
        metrics = json.loads(metrics_path.read_text())
        assert check_trace(trace) == []
        assert check_metrics(metrics, report) == []
        instants = {event["name"] for event in trace["traceEvents"]
                    if event["ph"] == "i"}
        # Every fault-path decision shows up on the tracks.
        assert {"gpu_failure", "gpu_recovered", "job_failed", "job_preempted",
                "job_resumed", "checkpoint", "job_finish"} <= instants
        # One track per job and per resource.
        threads = {event["args"]["name"] for event in trace["traceEvents"]
                   if event["ph"] == "M" and event["name"] == "thread_name"}
        assert {"a", "b", "ckpt-store", "core"} <= threads

    def test_traced_byte_totals_match_resource_audit(self):
        report = run_scenario(_scenario(observe=True), include_trace=False)
        # Re-run with exports to get the full series (summary drops samples).
        observed = run_scenario(_scenario(observe=True))
        for name, summary in report["resources"].items():
            if summary["total_bytes"] <= 0:
                continue
            metric = observed["metrics"][f"resource.bytes.{name}"]
            assert int(metric["total"]) == int(summary["total_bytes"])

    def test_invalidated_iterations_leave_no_speculative_spans(self, tmp_path):
        """Job tracks show only committed work: spans nest even under faults."""
        trace_path = tmp_path / "trace.json"
        run_scenario(_scenario(), trace_out=str(trace_path))
        trace = json.loads(trace_path.read_text())
        assert check_trace(trace) == []  # includes the nest-or-disjoint check
        iteration_spans = [event for event in trace["traceEvents"]
                          if event["ph"] == "X" and event["name"] == "iteration"]
        assert iteration_spans
        assert all(event["args"]["mode"] in ("live", "replay")
                   for event in iteration_spans)

    def test_metrics_csv_export(self, tmp_path):
        metrics_path = tmp_path / "metrics.csv"
        run_scenario(_scenario(), metrics_out=str(metrics_path))
        lines = metrics_path.read_text().strip().splitlines()
        assert lines[0] == "metric,kind,time,value"
        assert len(lines) > 10


# --------------------------------------------------------------------------- #
# Sweep: per-cell metrics, worker-count independence
# --------------------------------------------------------------------------- #
class TestSweepMetrics:
    SWEEP = {
        "scenario": {
            "cluster": {"num_machines": 2, "gpus_per_machine": 2, "storage_gbps": 10.0},
            "observe": True,
            "jobs": [
                {"name": "a", "modules": [40000, 80000, 60000], "batch_size": 16,
                 "num_workers": 2, "iterations": 5, "checkpoint_every": 2},
                {"name": "b", "modules": [40000, 80000, 60000], "batch_size": 16,
                 "num_workers": 2, "iterations": 5}],
        },
        "grid": {"cluster.storage_gbps": [5.0, 10.0]},
        "seed": 0,
    }

    def test_sweep_cells_carry_metrics_summary(self):
        merged = run_sweep(copy.deepcopy(self.SWEEP), workers=1)
        for row in merged["cells"]:
            assert row["metrics"]
            assert "cluster.utilization" in row["metrics"]
            assert "perf" in row

    def test_sweep_metrics_identical_across_worker_counts(self):
        serial = run_sweep(copy.deepcopy(self.SWEEP), workers=1)
        parallel = run_sweep(copy.deepcopy(self.SWEEP), workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    def test_unobserved_sweep_has_no_metrics_key(self):
        sweep = copy.deepcopy(self.SWEEP)
        del sweep["scenario"]["observe"]
        merged = run_sweep(sweep, workers=1)
        assert all("metrics" not in row for row in merged["cells"])


# --------------------------------------------------------------------------- #
# Per-iteration RunHistory on trainer-backed jobs
# --------------------------------------------------------------------------- #
class TestTrainerJobHistory:
    def _trainer(self):
        from repro import models, optim
        from repro.baselines import VanillaTrainer
        from repro.core import ClassificationTask
        from repro.data import DataLoader, make_dataset

        full = make_dataset("synthetic_cifar10", num_samples=48, num_classes=4,
                            image_size=8, noise=0.8, seed=0)
        train_ds, _eval_ds = full.split(eval_fraction=0.25)
        train_loader = DataLoader(train_ds, batch_size=8, seed=0)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        return VanillaTrainer(model, ClassificationTask(), train_loader, None, optimizer)

    def test_job_record_carries_per_iteration_history(self):
        from repro.sim import TrainerJob

        job = TrainerJob("t", self._trainer(), iterations=6, num_workers=2)
        scheduler = ClusterScheduler(paper_testbed_cluster())
        scheduler.submit(job)
        record = scheduler.run().jobs["t"]
        history = record.history
        assert history is job.run_history()
        assert len(history.records) == 6
        assert history.metric_name == "train_loss"
        # Sim-time stamps are monotone: iterations execute in schedule order.
        stamps = [entry.simulated_time for entry in history.records]
        assert stamps == sorted(stamps)
        assert all(entry.train_loss > 0 for entry in history.records)
        view = record.as_dict()
        assert view["loss_series"] == history.losses()
        assert view["frozen_fraction_series"] == history.frozen_fractions()
        assert len(view["loss_series"]) == 6

    def test_plain_sim_jobs_have_no_history(self):
        scheduler = ClusterScheduler(paper_testbed_cluster())
        scheduler.submit(SimJob(name="a", cost_model=_cost_model(),
                                num_workers=2, iterations=3))
        record = scheduler.run().jobs["a"]
        assert record.history is None
        assert "loss_series" not in record.as_dict()


# --------------------------------------------------------------------------- #
# Profiling harness
# --------------------------------------------------------------------------- #
class TestProfiler:
    def test_profile_report_shape_and_ranking(self):
        report = profile_scenario(_scenario(), top=10)
        assert report["num_jobs"] == 2
        assert report["wall_seconds"] > 0
        assert report["events_per_second"] > 0
        assert report["iterations_per_second"] > 0
        assert report["makespan"] == pytest.approx(run_scenario(_scenario())["makespan"])
        assert 0 < len(report["hot_functions"]) <= 10
        cumtimes = [row["cumtime"] for row in report["hot_functions"]]
        assert cumtimes == sorted(cumtimes, reverse=True)
        for row in report["hot_functions"]:
            assert row["calls"] >= 1 and row["function"]

    def test_profile_sort_columns(self):
        report = profile_scenario(_scenario(), top=5, sort="tottime")
        tottimes = [row["tottime"] for row in report["hot_functions"]]
        assert tottimes == sorted(tottimes, reverse=True)
        with pytest.raises(ValueError, match="sort"):
            profile_scenario(_scenario(), sort="bogus")

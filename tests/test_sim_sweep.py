"""Tests for the parallel scenario sweep runner (`repro sim sweep`).

The load-bearing guarantee: the merged sweep output is a pure function of
the sweep spec — independent of worker count, pool scheduling and completion
order — because every cell is deterministic and carries its own seed.
"""

import json
import os

import pytest

from repro.cli import main
from repro.sim import build_cells, expand_grid, run_sweep
from repro.sim.sweep import _apply_override

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLE_SWEEP = os.path.join(REPO_ROOT, "examples", "sweep_oversubscription.json")

BASE_SCENARIO = {
    "cluster": {"num_machines": 2, "gpus_per_machine": 2, "storage_gbps": 10.0},
    "jobs": [
        {"name": "a", "modules": [4000, 8000, 6000], "batch_size": 16,
         "num_workers": 2, "iterations": 3, "checkpoint_every": 2},
        {"name": "b", "modules": [4000, 8000], "batch_size": 16,
         "num_workers": 2, "iterations": 3},
    ],
}


class TestGridExpansion:
    def test_row_major_order_last_key_fastest(self):
        cells = expand_grid({"x": [1, 2], "y": ["a", "b", "c"]})
        assert cells == [{"x": 1, "y": "a"}, {"x": 1, "y": "b"}, {"x": 1, "y": "c"},
                         {"x": 2, "y": "a"}, {"x": 2, "y": "b"}, {"x": 2, "y": "c"}]

    def test_empty_grid_and_empty_values_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            expand_grid({})
        with pytest.raises(ValueError, match="non-empty list"):
            expand_grid({"x": []})
        with pytest.raises(ValueError, match="non-empty list"):
            expand_grid({"x": 3})

    def test_apply_override_paths(self):
        spec = {"cluster": {"nic_gbps": 1.0}, "jobs": [{"name": "a"}, {"name": "b"}]}
        _apply_override(spec, "cluster.core_gbps", 0.5)
        _apply_override(spec, "jobs.1.num_workers", 4)
        _apply_override(spec, "placement", "tor_pack")
        assert spec["cluster"] == {"nic_gbps": 1.0, "core_gbps": 0.5}
        assert spec["jobs"][1] == {"name": "b", "num_workers": 4}
        assert spec["placement"] == "tor_pack"
        # Dotted sections are created on demand even when the base omits them.
        bare = {}
        _apply_override(bare, "cluster.core_gbps", 1.0)
        assert bare == {"cluster": {"core_gbps": 1.0}}
        with pytest.raises(ValueError, match="not a dict or list"):
            _apply_override({"cluster": 3}, "cluster.core_gbps.x", 1.0)

    def test_build_cells_applies_overrides_and_per_cell_seeds(self):
        sweep = {"scenario": BASE_SCENARIO, "seed": 7,
                 "grid": {"cluster.storage_gbps": [1.0, 2.0], "placement": ["fifo", "round_robin"]}}
        cells = build_cells(sweep)
        assert [cell["index"] for cell in cells] == [0, 1, 2, 3]
        assert [cell["seed"] for cell in cells] == [7, 8, 9, 10]
        assert cells[0]["scenario"]["cluster"]["storage_gbps"] == 1.0
        assert cells[3]["scenario"]["placement"] == "round_robin"
        assert cells[3]["scenario"]["seed"] == 10
        # The base scenario is never mutated (cells deep-copy it).
        assert "placement" not in BASE_SCENARIO
        assert BASE_SCENARIO["cluster"]["storage_gbps"] == 10.0

    def test_sweep_spec_validation(self):
        with pytest.raises(ValueError, match="unknown sweep keys"):
            build_cells({"scenario": BASE_SCENARIO, "grid": {"seed": [1]}, "warp": 1})
        with pytest.raises(ValueError, match="exactly one"):
            build_cells({"grid": {"seed": [1]}})
        with pytest.raises(ValueError, match="exactly one"):
            build_cells({"scenario": BASE_SCENARIO, "scenario_file": "x.json",
                         "grid": {"seed": [1]}})


class TestRunSweep:
    def test_parallel_output_identical_to_serial(self):
        """The CI sweep-smoke contract, on the committed example sweep: a
        4-cell core_gbps oversubscription grid on 2 workers merges to exactly
        the serial result."""
        serial = run_sweep(EXAMPLE_SWEEP, workers=1)
        parallel = run_sweep(EXAMPLE_SWEEP, workers=2)
        assert parallel == serial
        assert serial["num_cells"] == 4
        # The oversubscription study actually bites: makespan is monotone
        # non-increasing as the core fabric widens.
        makespans = [row["makespan"] for row in serial["cells"]]
        assert makespans == sorted(makespans, reverse=True)
        assert makespans[0] > makespans[-1]

    def test_cells_carry_params_records_and_perf(self):
        sweep = {"scenario": BASE_SCENARIO, "grid": {"cluster.storage_gbps": [5.0, 20.0]}}
        merged = run_sweep(sweep)
        assert merged["num_cells"] == 2
        slow, fast = merged["cells"]
        assert slow["params"] == {"cluster.storage_gbps": 5.0}
        assert set(slow["jobs"]) == {"a", "b"}
        assert slow["resources"]["ckpt-store"]["total_bytes"] > 0
        assert "cache_hit_rate" in slow["perf"]
        # Faster storage never finishes the same checkpointed workload later.
        assert fast["makespan"] <= slow["makespan"]

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep({"scenario": BASE_SCENARIO, "grid": {"seed": [1]}}, workers=0)

    def test_cell_seeds_stay_base_plus_index(self):
        """The documented seed law: cell ``i`` always runs at ``seed + i``,
        identically in the serial and pooled paths — the invariant every
        "independent of worker count" guarantee rests on."""
        sweep = {"scenario": BASE_SCENARIO, "seed": 7,
                 "grid": {"cluster.storage_gbps": [1.0, 2.0],
                          "placement": ["fifo", "round_robin"]}}
        for workers in (1, 2):
            merged = run_sweep(sweep, workers=workers)
            assert [row["seed"] for row in merged["cells"]] == [7, 8, 9, 10]
            assert [row["index"] for row in merged["cells"]] == [0, 1, 2, 3]
        # build_cells (the CLI's dry-run view) agrees with what actually ran.
        assert [cell["seed"] for cell in build_cells(sweep)] == [7, 8, 9, 10]
        assert [cell["scenario"]["seed"] for cell in build_cells(sweep)] == [7, 8, 9, 10]


class TestPersistentPool:
    SWEEP = {"scenario": BASE_SCENARIO,
             "grid": {"cluster.storage_gbps": [5.0, 10.0, 20.0]}}

    def test_pool_survives_and_is_reused_across_sweeps(self):
        import repro.sim.sweep as sweep_mod

        sweep_mod.shutdown_pool()
        first = run_sweep(self.SWEEP, workers=2)
        state = sweep_mod._POOL_STATE
        assert state is not None
        second = run_sweep(self.SWEEP, workers=2)
        assert sweep_mod._POOL_STATE is state  # same live pool, not a rebuild
        assert second == first

    def test_pool_rebuilt_on_size_or_base_change(self):
        import repro.sim.sweep as sweep_mod

        run_sweep(self.SWEEP, workers=2)
        pool_before = sweep_mod._POOL_STATE[0]
        run_sweep(self.SWEEP, workers=3)
        assert sweep_mod._POOL_STATE[0] is not pool_before

        pool_before = sweep_mod._POOL_STATE[0]
        other_base = dict(self.SWEEP, scenario=dict(BASE_SCENARIO, seed=99))
        run_sweep(other_base, workers=3)
        assert sweep_mod._POOL_STATE[0] is not pool_before

    def test_shutdown_pool_reaps_and_is_idempotent(self):
        import repro.sim.sweep as sweep_mod

        result = run_sweep(self.SWEEP, workers=2)
        assert sweep_mod._POOL_STATE is not None
        sweep_mod.shutdown_pool()
        assert sweep_mod._POOL_STATE is None
        sweep_mod.shutdown_pool()  # no-op on an already-dead pool
        # A fresh sweep transparently rebuilds and still matches.
        assert run_sweep(self.SWEEP, workers=2) == result


class TestSweepCli:
    def _write(self, tmp_path, spec, name="sweep.json"):
        path = tmp_path / name
        path.write_text(json.dumps(spec))
        return str(path)

    def test_cli_sweep_writes_merged_table(self, tmp_path, capsys):
        sweep = {"scenario": BASE_SCENARIO, "grid": {"cluster.storage_gbps": [5.0, 20.0]}}
        out = str(tmp_path / "merged.json")
        assert main(["sim", "sweep", self._write(tmp_path, sweep), "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "2 cells" in stdout and "makespan" in stdout
        merged = json.loads(open(out).read())
        assert merged["num_cells"] == 2
        assert merged["cells"][0]["params"] == {"cluster.storage_gbps": 5.0}

    def test_cli_sweep_scenario_file_resolves_relative_to_sweep(self, tmp_path, capsys):
        scenario_path = tmp_path / "base.json"
        scenario_path.write_text(json.dumps(BASE_SCENARIO))
        sweep = {"scenario_file": "base.json", "grid": {"placement": ["fifo", "round_robin"]}}
        assert main(["sim", "sweep", self._write(tmp_path, sweep)]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["num_cells"] == 2

    def test_cli_sweep_rejects_bad_specs(self, tmp_path, capsys):
        bad = {"scenario": BASE_SCENARIO, "grid": {"jobs.9.iterations": [1]}}
        assert main(["sim", "sweep", self._write(tmp_path, bad)]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["sim", "sweep", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

"""Integration tests for the experiments package (workloads, runners, harnesses).

These run heavily truncated versions of the benchmark experiments so the test
suite stays fast while still exercising the end-to-end wiring.
"""

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    SYSTEMS,
    available_workloads,
    build_workload,
    compare_systems,
    format_rows,
    run_fig9_breakdown,
    run_fig10_distributed,
    run_trainer,
)
from repro.sim import SchedulePolicy


class TestWorkloadBuilders:
    def test_all_seven_workloads_build(self):
        names = available_workloads()
        assert len(names) == 7
        for name in names:
            workload = build_workload(name, scale="tiny")
            assert workload.num_epochs > 0
            assert workload.batch_size > 0
            model = workload.make_model()
            optimizer = workload.make_optimizer(model)
            scheduler = workload.make_scheduler(optimizer)
            assert optimizer.lr > 0
            assert scheduler.current_lr > 0

    def test_unknown_workload_and_scale(self):
        with pytest.raises(KeyError):
            build_workload("alexnet_mnist")
        with pytest.raises(KeyError):
            build_workload("resnet56_cifar10", scale="huge")

    def test_loaders_split_train_eval(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        assert len(workload.train_dataset) > len(workload.eval_dataset)
        train_loader = workload.train_loader()
        assert train_loader.batch_size == workload.batch_size

    def test_scales_exist(self):
        assert set(SCALES) == {"tiny", "small"}


class TestRunners:
    def test_run_vanilla_truncated(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        result = run_trainer("vanilla", workload, num_epochs=2)
        assert len(result["history"].records) == 2
        assert result["frozen_fraction"] == 0.0

    def test_run_egeria_truncated(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        result = run_trainer("egeria", workload, num_epochs=3)
        assert "summary" in result and "timeline" in result
        assert result["simulated_time"] > 0

    def test_every_system_constructs_and_runs_one_epoch(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        for system in SYSTEMS:
            result = run_trainer(system, workload, num_epochs=1)
            assert result["system"] == system
            assert len(result["history"].records) == 1

    def test_unknown_system(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        with pytest.raises(KeyError):
            run_trainer("not_a_system", workload, num_epochs=1)

    def test_compare_systems_rows_and_format(self):
        workload = build_workload("resnet56_cifar10", scale="tiny")
        rows = compare_systems(workload, systems=("vanilla", "egeria"), num_epochs=3)
        assert {row.system for row in rows} == {"vanilla", "egeria"}
        vanilla_row = next(r for r in rows if r.system == "vanilla")
        assert vanilla_row.tta_speedup_vs_vanilla == 0.0
        text = format_rows(rows)
        assert "egeria" in text and "workload" in text
        as_dict = rows[0].as_dict()
        assert "final_metric" in as_dict


class TestAnalyticHarnesses:
    def test_fig9_breakdown_rows(self):
        rows = run_fig9_breakdown(workload_names=["resnet50_imagenet"], scale="tiny")
        assert len(rows) == 1
        row = rows[0]
        assert row["freezing_plus_caching"] <= row["freezing_only"] <= row["baseline"]

    def test_fig10_distributed_rows(self):
        result = run_fig10_distributed(workload_name="resnet50_imagenet", scale="tiny",
                                       machine_counts=(2, 3))
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row[SchedulePolicy.EGERIA] > 0
            assert row[SchedulePolicy.VANILLA] > 0

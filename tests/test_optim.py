"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn, optim
from repro.nn import Tensor


def make_param(value=1.0):
    return nn.Parameter(np.array([value], dtype=np.float32))


class TestSGD:
    def test_plain_sgd_step(self):
        p = make_param(1.0)
        p.grad = np.array([0.5], dtype=np.float32)
        opt = optim.SGD([p], lr=0.1, momentum=0.0)
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = optim.SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        first = p.data[0]
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        second_step = p.data[0] - first
        assert second_step < -1.0  # momentum makes the second step larger

    def test_weight_decay(self):
        p = make_param(2.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt = optim.SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.step()
        assert p.data[0] < 2.0

    def test_frozen_parameters_skipped(self):
        p = make_param(1.0)
        p.grad = np.array([1.0], dtype=np.float32)
        p.requires_grad = False
        opt = optim.SGD([p], lr=0.1)
        opt.step()
        assert p.data[0] == 1.0

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = make_param(0.0), make_param(0.0)
        o1 = optim.SGD([p1], lr=0.1, momentum=0.9, nesterov=False)
        o2 = optim.SGD([p2], lr=0.1, momentum=0.9, nesterov=True)
        for opt, p in ((o1, p1), (o2, p2)):
            for _ in range(3):
                p.grad = np.array([1.0], dtype=np.float32)
                opt.step()
        assert not np.isclose(p1.data[0], p2.data[0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            optim.SGD([make_param()], lr=0.0)

    def test_zero_grad_and_state_summary(self):
        p = make_param()
        p.grad = np.ones(1, dtype=np.float32)
        opt = optim.SGD([p], lr=0.1)
        opt.step()
        opt.zero_grad()
        assert p.grad is None
        summary = opt.state_summary()
        assert summary["num_velocity_buffers"] == 1.0

    def test_training_reduces_loss(self, rng):
        layer = nn.Linear(4, 1, rng=rng)
        opt = optim.SGD(layer.parameters(), lr=0.1, momentum=0.9)
        x = rng.standard_normal((32, 4)).astype(np.float32)
        y = (x @ np.array([1.0, -2.0, 0.5, 3.0], dtype=np.float32)).reshape(-1, 1)
        losses = []
        for _ in range(30):
            pred = layer(Tensor(x))
            loss = nn.MSELoss()(pred, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.2


class TestAdam:
    def test_adam_step_moves_against_gradient(self):
        p = make_param(1.0)
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_adam_bias_correction_first_step_magnitude(self):
        p = make_param(0.0)
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.array([0.3], dtype=np.float32)
        opt.step()
        assert np.isclose(abs(p.data[0]), 0.1, atol=1e-3)

    def test_adamw_decoupled_decay(self):
        p = make_param(5.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt = optim.AdamW([p], lr=0.1, weight_decay=0.1)
        opt.step()
        assert p.data[0] < 5.0

    def test_adam_skips_frozen(self):
        p = make_param(1.0)
        p.requires_grad = False
        p.grad = np.array([1.0], dtype=np.float32)
        optim.Adam([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_step_count(self):
        p = make_param()
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        opt.step()
        assert opt.step_count == 2


class TestSchedulers:
    def _opt(self, lr=1.0):
        return optim.SGD([make_param()], lr=lr)

    def test_step_lr(self):
        sched = optim.StepLR(self._opt(), step_size=10, gamma=0.1)
        assert np.isclose(sched.get_lr(0), 1.0)
        assert np.isclose(sched.get_lr(10), 0.1)
        assert np.isclose(sched.get_lr(25), 0.01)

    def test_multistep_lr_milestones(self):
        sched = optim.MultiStepLR(self._opt(), milestones=[100, 150], gamma=0.1)
        assert np.isclose(sched.get_lr(99), 1.0)
        assert np.isclose(sched.get_lr(100), 0.1)
        assert np.isclose(sched.get_lr(160), 0.01)

    def test_exponential_lr(self):
        sched = optim.ExponentialLR(self._opt(), gamma=0.5)
        assert np.isclose(sched.get_lr(3), 0.125)

    def test_cosine_annealing_endpoints(self):
        sched = optim.CosineAnnealingLR(self._opt(), t_max=10)
        assert np.isclose(sched.get_lr(0), 1.0)
        assert sched.get_lr(10) < 1e-6
        assert sched.cyclical

    def test_cosine_restarts(self):
        sched = optim.CosineAnnealingLR(self._opt(), t_max=10, restarts=True)
        assert np.isclose(sched.get_lr(10), sched.get_lr(0))

    def test_inverse_square_root_warmup_then_decay(self):
        sched = optim.InverseSquareRootLR(self._opt(), warmup_steps=10)
        assert sched.get_lr(4) < sched.get_lr(9)
        assert sched.get_lr(40) < sched.get_lr(10)

    def test_linear_decay(self):
        sched = optim.LinearDecayLR(self._opt(), total_steps=10)
        assert sched.get_lr(0) == 1.0
        assert np.isclose(sched.get_lr(5), 0.5)
        assert sched.get_lr(10) == 0.0

    def test_lambda_poly(self):
        sched = optim.LambdaLR(self._opt(), total_epochs=10, power=1.0)
        assert np.isclose(sched.get_lr(5), 0.5)

    def test_cyclical_lr_triangle(self):
        sched = optim.CyclicalLR(self._opt(), min_lr=0.0, max_lr=1.0, cycle_length=10)
        assert np.isclose(sched.get_lr(5), 1.0)
        assert np.isclose(sched.get_lr(0), 0.0)
        assert sched.cyclical

    def test_step_updates_optimizer_lr(self):
        opt = self._opt()
        sched = optim.MultiStepLR(opt, milestones=[2], gamma=0.1)
        sched.step(5)
        assert np.isclose(opt.lr, 0.1)

    def test_history(self):
        sched = optim.StepLR(self._opt(), step_size=2, gamma=0.5)
        assert sched.history(4) == [1.0, 1.0, 0.5, 0.5]

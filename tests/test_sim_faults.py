"""Tests for the structured fault model (``repro.sim.faults``).

Five families of guarantees:

* **Correlated domains** — machine/rack failures take down every resident
  GPU atomically (plus the ToR uplink for racks), so blast radius depends
  measurably on placement: ``tor_pack`` confines a rack failure to the jobs
  resident on that rack while spread placements expose every job.
* **Degraded links** — mid-run capacity drops slow the run and restore
  cleanly, with byte accounting intact (the resource-level re-quote is
  covered in ``tests/test_sim_resources.py``).
* **Spot capacity** — eviction notices trigger proactive checkpoints so the
  resume loses at most the notice-to-eviction window; unannounced evictions
  roll back a full checkpoint interval.  Restart backoff delays flapping
  jobs with capped-exponential delays and resets on progress.
* **Plan parsing** — ``parse_faults`` validates every reference against the
  topology at build time with pointed errors, and the seeded stochastic
  generator is bit-reproducible.
* **Determinism** — fault-heavy scenarios replay bit-identically, including
  under the sanitizer (hash-seed independence is pinned in
  ``tests/test_scheduler_determinism.py``).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modules import LayerModule
from repro.sim import (
    Cluster,
    ClusterScheduler,
    ClusterSpec,
    CostModel,
    FaultEvent,
    FaultPlan,
    SimJob,
    apply_fault_plan,
    generate_fault_events,
    parse_faults,
    preview_faults,
    run_scenario,
)


def synthetic_modules(param_counts=(400_000, 800_000, 600_000)):
    return [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=int(c), index=i)
            for i, c in enumerate(param_counts)]


def make_cost_model(batch_size=4):
    return CostModel(synthetic_modules(), batch_size=batch_size)


def two_rack_cluster(**overrides) -> Cluster:
    """4 machines x 2 GPUs behind 2 ToR switches with per-ToR fabric.

    Machine ``node<i>`` uplinks to ToR ``i % 2``: rack 0 is {node0, node2},
    rack 1 is {node1, node3}.
    """
    spec = dict(num_machines=4, gpus_per_machine=2, num_tor_switches=2,
                nic_gbps=1.0, tor_uplink_gbps=1.0, core_gbps=0.5,
                per_tor_fabric=True)
    spec.update(overrides)
    return Cluster(ClusterSpec(**spec))


def kinds(result, kind):
    return [entry for entry in result.trace if entry["kind"] == kind]


# --------------------------------------------------------------------------- #
# Correlated failure domains
# --------------------------------------------------------------------------- #
class TestCorrelatedDomains:
    def test_fail_machine_takes_down_all_resident_gpus_atomically(self):
        cluster = two_rack_cluster()
        scheduler = ClusterScheduler(cluster)
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=6,
                                checkpoint_every=2, storage="ckpt-store"))
        scheduler.fail_machine("node0", at_time=0.4, recover_at=1.0)
        result = scheduler.run()
        domain = kinds(result, "domain_failure")
        assert len(domain) == 1
        assert domain[0]["cause"] == "machine"
        assert domain[0]["gpus"] == ["node0:gpu0", "node0:gpu1"]
        assert result.jobs["a"].failures == 1
        assert result.jobs["a"].iterations_done == 6  # recovered and finished
        recovered = kinds(result, "domain_recovered")
        assert len(recovered) == 1 and recovered[0]["label"] == "node0"

    def test_rack_failure_blast_radius_depends_on_placement(self):
        """tor_pack confines a rack failure to the rack's resident jobs."""
        def victims(placement):
            scheduler = ClusterScheduler(two_rack_cluster(), placement=placement)
            for name in ("a", "b"):
                scheduler.submit(SimJob(name, make_cost_model(), num_workers=4,
                                        iterations=6, checkpoint_every=2,
                                        storage="ckpt-store"))
            scheduler.fail_rack(0, at_time=0.4, recover_at=1.2)
            result = scheduler.run()
            assert all(rec.iterations_done == 6 for rec in result.jobs.values())
            return {name for name, rec in result.jobs.items() if rec.failures}

        # Packed: job a fills rack 0, job b fills rack 1 -> one whole job lost.
        assert victims("tor_pack") == {"a"}
        # Spread: both jobs straddle rack 0 -> the same fault hits everyone.
        assert victims("round_robin") == {"a", "b"}

    def test_fail_rack_degrades_and_restores_the_tor_uplink(self):
        scheduler = ClusterScheduler(two_rack_cluster(), placement="tor_pack")
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=4, iterations=6,
                                checkpoint_every=2, storage="ckpt-store"))
        scheduler.fail_rack(0, at_time=0.4, recover_at=1.2)
        result = scheduler.run()
        assert [e["resource"] for e in kinds(result, "tor_failure")] == ["tor0-uplink"]
        assert [e["resource"] for e in kinds(result, "tor_recovered")] == ["tor0-uplink"]
        profile = scheduler.engine.resource_timeline("tor0-uplink").capacity_profile()
        assert [at for at, _factor in profile] == [0.4, 1.2]
        assert profile[0][1] == pytest.approx(ClusterScheduler.TOR_DOWN_GBPS / 1.0)
        assert profile[1][1] == pytest.approx(1.0)  # back to nominal

    def test_fail_tor_cuts_the_uplink_but_keeps_gpus_alive(self):
        def run(fail):
            # One job spanning both racks: its all-reduce crosses tor0-uplink.
            scheduler = ClusterScheduler(two_rack_cluster(), placement="round_robin")
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=8,
                                    iterations=6))
            if fail:
                scheduler.fail_tor(0, at_time=0.4, recover_at=2.0)
            return scheduler.run()

        clean, failed = run(fail=False), run(fail=True)
        assert failed.jobs["a"].failures == 0  # no GPU ever went down
        assert not kinds(failed, "domain_failure")
        assert kinds(failed, "tor_failure") and kinds(failed, "tor_recovered")
        assert failed.makespan > clean.makespan  # the stall is real

    def test_fail_tor_requires_per_tor_fabric(self):
        scheduler = ClusterScheduler(Cluster(ClusterSpec(num_machines=2)))
        with pytest.raises(ValueError, match="per-ToR fabric"):
            scheduler.fail_tor(0, at_time=1.0)

    def test_domain_knobs_validate_references_and_times(self):
        scheduler = ClusterScheduler(two_rack_cluster())
        with pytest.raises(KeyError, match="unknown machine 'node9'"):
            scheduler.fail_machine("node9", at_time=1.0)
        with pytest.raises(KeyError):
            scheduler.fail_rack(7, at_time=1.0)
        with pytest.raises(ValueError, match="recover_at must come after"):
            scheduler.fail_machine("node0", at_time=2.0, recover_at=2.0)


# --------------------------------------------------------------------------- #
# Degraded links
# --------------------------------------------------------------------------- #
class TestDegradedLinks:
    def _run(self, degrade):
        scheduler = ClusterScheduler(two_rack_cluster(), placement="round_robin")
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=8, iterations=8))
        if degrade:
            scheduler.degrade_link("core", gbps=0.05, at_time=0.5, restore_at=3.0)
        return scheduler.run()

    def test_degraded_core_slows_cross_rack_job_then_restores(self):
        clean, degraded = self._run(False), self._run(True)
        assert degraded.makespan > clean.makespan
        assert [e["resource"] for e in kinds(degraded, "link_degraded")] == ["core"]
        assert [e["resource"] for e in kinds(degraded, "link_restored")] == ["core"]
        # Payload bytes are untouched by the re-quote: the job moved the
        # same traffic through the core either way.
        assert degraded.resources["core"]["total_bytes"] == \
            clean.resources["core"]["total_bytes"]

    def test_degrade_link_validates_name_and_capacity(self):
        scheduler = ClusterScheduler(two_rack_cluster())
        with pytest.raises(KeyError):
            scheduler.degrade_link("no-such-link", gbps=0.1, at_time=1.0)
        with pytest.raises(ValueError, match="must be positive"):
            scheduler.degrade_link("core", gbps=0.0, at_time=1.0)
        with pytest.raises(ValueError, match="recover_at must come after"):
            scheduler.degrade_link("core", gbps=0.1, at_time=2.0, restore_at=1.0)


# --------------------------------------------------------------------------- #
# Spot capacity: notices, proactive checkpoints, backoff
# --------------------------------------------------------------------------- #
class TestSpotCapacity:
    #: Clean per-iteration seconds for this job shape, measured once so the
    #: fault times below always land mid-run (the sim is deterministic).
    _iteration_seconds = None

    @classmethod
    def _cluster(cls):
        # Fast checkpoint path (the NIC caps storage writes): the proactive
        # write must drain inside the notice window for the snapshot to
        # survive the eviction (the notice-shorter-than-drain case is
        # covered by the drop path below).
        return two_rack_cluster(nic_gbps=20.0, storage_gbps=20.0)

    @classmethod
    def _iteration(cls):
        if cls._iteration_seconds is None:
            scheduler = ClusterScheduler(cls._cluster(), placement="tor_pack")
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=2,
                                    iterations=10, storage="ckpt-store"))
            cls._iteration_seconds = scheduler.run().jobs["a"].finish_time / 10
        return cls._iteration_seconds

    def _run(self, notice_seconds, checkpoint_every=None):
        step = self._iteration()
        scheduler = ClusterScheduler(self._cluster(), placement="tor_pack")
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=10,
                                checkpoint_every=checkpoint_every,
                                storage="ckpt-store"))
        scheduler.mark_preemptible(["node0:gpu0"],
                                   notice_seconds=notice_seconds * step)
        # Evict mid-run (~5.5 iterations in); the notice, when configured,
        # fires notice_seconds iterations earlier — long enough for the
        # proactive write to drain before the eviction lands.
        scheduler.evict_spot("node0:gpu0", at_time=5.5 * step,
                             rejoin_at=7.5 * step)
        return scheduler.run()

    def test_eviction_counts_separately_from_hard_failures(self):
        result = self._run(notice_seconds=0.0)
        record = result.jobs["a"]
        assert record.evictions == 1
        assert record.failures == 0
        assert record.iterations_done == 10
        assert kinds(result, "spot_evicted") and kinds(result, "job_evicted")
        assert not kinds(result, "spot_notice")  # unannounced

    def test_proactive_checkpoint_bounds_lost_work_to_the_notice_window(self):
        step = self._iteration()
        proactive = self._run(notice_seconds=3.0)
        reactive = self._run(notice_seconds=0.0)
        restart_of = lambda result: kinds(result, "job_evicted")[0]["restart_iteration"]
        # Without a notice (and without periodic checkpoints) the job
        # restarts from scratch; the proactive write preserves progress.
        assert restart_of(reactive) == 0
        assert restart_of(proactive) > restart_of(reactive)
        assert proactive.makespan < reactive.makespan
        notice = kinds(proactive, "spot_notice")[0]
        ckpt = kinds(proactive, "proactive_checkpoint")[0]
        assert notice["evict_at"] == pytest.approx(5.5 * step)
        assert ckpt["iteration"] == restart_of(proactive)
        # The resume lost at most the iterations still in flight during the
        # notice window, not a whole checkpoint interval.
        evicted_at = kinds(proactive, "job_evicted")[0]["time"]
        done_at_notice = ckpt["iteration"]
        assert evicted_at - notice["time"] == pytest.approx(3.0 * step)
        assert proactive.jobs["a"].checkpoints_taken >= 1
        assert done_at_notice >= 1

    def test_notice_beats_periodic_checkpoint_interval(self):
        # With sparse periodic checkpoints the proactive write still wins:
        # it snapshots *current* progress, not the last multiple of 4.
        proactive = self._run(notice_seconds=3.0, checkpoint_every=4)
        reactive = self._run(notice_seconds=0.0, checkpoint_every=4)
        restart_of = lambda result: kinds(result, "job_evicted")[0]["restart_iteration"]
        assert restart_of(proactive) >= restart_of(reactive)
        assert proactive.makespan <= reactive.makespan

    def test_notice_shorter_than_the_drain_drops_the_snapshot(self):
        # On slow storage the proactive write cannot finish inside the
        # notice window; the eviction invalidates it and the job restarts
        # from its last durable checkpoint (none here) — the documented
        # failure mode of too-short notices.
        scheduler = ClusterScheduler(two_rack_cluster(), placement="tor_pack")
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2,
                                iterations=10, storage="ckpt-store"))
        step = 0.04335  # clean per-iteration seconds on the 1 Gbps cluster
        scheduler.mark_preemptible(["node0:gpu0"], notice_seconds=3.0 * step)
        scheduler.evict_spot("node0:gpu0", at_time=5.5 * step, rejoin_at=7.5 * step)
        result = scheduler.run()
        assert kinds(result, "proactive_checkpoint")  # the write was attempted
        assert kinds(result, "checkpoint_dropped")    # ...but never drained
        assert kinds(result, "job_evicted")[0]["restart_iteration"] == 0
        assert result.jobs["a"].iterations_done == 10

    def test_evict_spot_requires_mark_preemptible(self):
        scheduler = ClusterScheduler(two_rack_cluster())
        with pytest.raises(ValueError, match="not marked preemptible"):
            scheduler.evict_spot("node0:gpu0", at_time=1.0)
        with pytest.raises(ValueError, match="notice_seconds"):
            scheduler.mark_preemptible(["node0:gpu0"], notice_seconds=-1.0)


class TestRestartBackoff:
    #: Clean per-iteration seconds for the single-GPU job shape, so failure
    #: times below always land mid-run.
    _step = None

    @classmethod
    def _scheduler(cls):
        cluster = Cluster(ClusterSpec(num_machines=1, gpus_per_machine=1,
                                      nic_gbps=1.0, tor_uplink_gbps=1.0))
        scheduler = ClusterScheduler(cluster)
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=1, iterations=6))
        return scheduler

    @classmethod
    def step(cls):
        if cls._step is None:
            cls._step = cls._scheduler().run().jobs["a"].finish_time / 6
        return cls._step

    def test_backoff_escalates_with_cap_and_delays_requeue(self):
        step = self.step()
        scheduler = self._scheduler()
        scheduler.set_restart_backoff(base_seconds=3 * step, cap_seconds=4.5 * step)
        # The second failure lands after the re-queue but before a single
        # iteration completes, so the attempt counter escalates.
        scheduler.inject_failure("node0:gpu0", at_time=1.5 * step, recover_at=1.7 * step)
        scheduler.inject_failure("node0:gpu0", at_time=5.0 * step, recover_at=5.2 * step)
        result = scheduler.run()
        backoffs = kinds(result, "restart_backoff")
        assert [entry["attempt"] for entry in backoffs] == [1, 2]
        assert backoffs[0]["delay"] == pytest.approx(3 * step)    # base
        assert backoffs[1]["delay"] == pytest.approx(4.5 * step)  # min(2*base, cap)
        requeued = kinds(result, "job_requeued")
        assert len(requeued) == 2
        for backoff, requeue in zip(backoffs, requeued):
            assert requeue["time"] == pytest.approx(backoff["time"] + backoff["delay"])
        assert result.jobs["a"].iterations_done == 6

    def test_completed_iteration_resets_the_attempt_counter(self):
        step = self.step()
        scheduler = self._scheduler()
        scheduler.set_restart_backoff(base_seconds=3 * step, cap_seconds=24 * step)
        scheduler.inject_failure("node0:gpu0", at_time=1.5 * step, recover_at=1.7 * step)
        # Well after re-placement at 4.5*step: iterations completed in
        # between, so the second failure starts a fresh backoff series.
        scheduler.inject_failure("node0:gpu0", at_time=7.0 * step, recover_at=7.2 * step)
        result = scheduler.run()
        assert [e["attempt"] for e in kinds(result, "restart_backoff")] == [1, 1]
        assert result.jobs["a"].iterations_done == 6

    def test_without_backoff_failed_jobs_requeue_immediately(self):
        step = self.step()
        scheduler = self._scheduler()
        scheduler.inject_failure("node0:gpu0", at_time=1.5 * step, recover_at=1.7 * step)
        result = scheduler.run()
        assert not kinds(result, "restart_backoff")
        assert result.jobs["a"].iterations_done == 6

    def test_backoff_parameters_are_validated(self):
        scheduler = self._scheduler()
        with pytest.raises(ValueError, match="base_seconds > 0"):
            scheduler.set_restart_backoff(0.0, 1.0)
        with pytest.raises(ValueError, match="cap_seconds >= base_seconds"):
            scheduler.set_restart_backoff(2.0, 1.0)


# --------------------------------------------------------------------------- #
# Plan parsing and build-time validation
# --------------------------------------------------------------------------- #
class TestParseFaults:
    def _cluster(self):
        return two_rack_cluster()

    def test_events_merge_sorted_with_policy(self):
        plan = parse_faults({
            "events": [
                {"kind": "spot_evict", "at_time": 3.0, "target": "node1:gpu0"},
                {"kind": "degrade_link", "at_time": 1.0, "target": "core", "gbps": 0.2},
                {"kind": "fail_rack", "at_time": 1.0, "target": 0, "recover_at": 2.0},
            ],
            "spot": {"gpus": ["node1:gpu0"], "notice_seconds": 0.5},
            "backoff": {"base_seconds": 0.25, "cap_seconds": 4.0},
        }, self._cluster())
        assert [e.kind for e in plan.events] == ["degrade_link", "fail_rack",
                                                 "spot_evict"]
        assert plan.spot_gpus == ("node1:gpu0",)
        assert plan.notice_seconds == 0.5
        assert plan.backoff == (0.25, 4.0)
        view = plan.as_dict()
        assert view["spot"] == {"gpus": ["node1:gpu0"], "notice_seconds": 0.5}
        assert json.dumps(view, sort_keys=True)  # plain data, serializable

    @pytest.mark.parametrize("spec, message", [
        ({"bogus": 1}, r"faults: unknown key 'bogus'"),
        ({"events": [{"kind": "melt", "at_time": 1.0, "target": "x"}]},
         r"unknown fault kind 'melt'"),
        ({"events": [{"kind": "fail_gpu", "at_time": 1.0, "target": "nope"}]},
         r"unknown GPU 'nope'"),
        ({"events": [{"kind": "fail_gpu", "at_time": 1.0, "target": "node0:gpu0",
                      "recover_at": 0.5}]},
         r"recover_at \(0.5\) must come after at_time \(1.0\)"),
        ({"events": [{"kind": "fail_rack", "at_time": 1.0, "target": "east"}]},
         r"fail_rack target must be a ToR index"),
        ({"events": [{"kind": "degrade_link", "at_time": 1.0, "target": "core"}]},
         r"degrade_link needs a positive 'gbps'"),
        ({"events": [{"kind": "degrade_link", "at_time": 1.0, "target": "no-link",
                      "gbps": 0.5}]},
         r"unknown resource 'no-link'"),
        ({"events": [{"kind": "fail_gpu", "at_time": 1.0, "target": "node0:gpu0",
                      "gbps": 0.5}]},
         r"'gbps' only applies to degrade_link"),
        ({"events": [{"kind": "spot_evict", "at_time": 1.0, "target": "node0:gpu0"}]},
         r"not\s+in faults.spot.gpus"),
        ({"spot": {"gpus": []}}, r"non-empty list of GPU names"),
        ({"spot": {"gpus": ["ghost:gpu9"]}}, r"unknown GPU 'ghost:gpu9'"),
        ({"spot": {"gpus": ["node0:gpu0"], "notice_seconds": -1}},
         r"notice_seconds must be non-negative"),
        ({"backoff": {"base_seconds": 1.0}}, r"missing key"),
        ({"backoff": {"base_seconds": 0.0, "cap_seconds": 1.0}},
         r"base_seconds > 0"),
        ({"seed": 1}, r"needs both 'seed' and 'horizon_seconds'"),
        ({"seed": 1, "horizon_seconds": 5.0},
         r"exactly one of 'mttf_seconds' or 'mttf_hours'"),
        ({"seed": 1, "horizon_seconds": 5.0, "mttf_seconds": 1.0,
          "mttf_hours": 1.0},
         r"exactly one of 'mttf_seconds' or 'mttf_hours'"),
        ({"mttr_seconds": 5.0},
         r"only apply to a stochastic stream"),
    ])
    def test_pointed_errors_at_build_time(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_faults(spec, self._cluster())

    def test_machine_and_rack_targets_validated_against_topology(self):
        with pytest.raises(KeyError, match="node9"):
            parse_faults({"events": [{"kind": "fail_machine", "at_time": 1.0,
                                      "target": "node9"}]}, self._cluster())
        with pytest.raises(KeyError):
            parse_faults({"events": [{"kind": "fail_rack", "at_time": 1.0,
                                      "target": 7}]}, self._cluster())

    def test_fail_tor_rejected_without_per_tor_fabric(self):
        flat = Cluster(ClusterSpec(num_machines=2))
        with pytest.raises(ValueError, match="per_tor_fabric"):
            parse_faults({"events": [{"kind": "fail_tor", "at_time": 1.0,
                                      "target": 0}]}, flat)

    def test_mttf_hours_is_a_scaled_alias(self):
        base = {"seed": 7, "horizon_seconds": 3600.0}
        cluster = self._cluster()
        seconds = parse_faults(dict(base, mttf_seconds=1800.0), cluster)
        hours = parse_faults(dict(base, mttf_hours=0.5), cluster)
        assert seconds == hours


class TestGenerator:
    def test_same_seed_same_stream(self):
        cluster = two_rack_cluster()
        streams = [generate_fault_events(seed=99, horizon_seconds=20.0,
                                         cluster=cluster, mttf_seconds=1.0,
                                         mttr_seconds=2.0,
                                         domains=("gpu", "machine", "rack", "link"))
                   for _ in range(2)]
        assert streams[0] == streams[1]
        assert streams[0]  # a 20s horizon at MTTF 1s is never empty

    def test_stream_respects_horizon_and_domains(self):
        cluster = two_rack_cluster()
        events = generate_fault_events(seed=3, horizon_seconds=15.0,
                                       cluster=cluster, mttf_seconds=0.5,
                                       mttr_seconds=1.0,
                                       domains=("gpu", "link"),
                                       link_gbps_factor=0.25)
        assert all(0.0 <= e.at_time < 15.0 for e in events)
        assert all(e.at_time <= later.at_time
                   for e, later in zip(events, events[1:]))
        assert {e.kind for e in events} <= {"fail_gpu", "degrade_link"}
        for event in events:
            assert event.recover_at is not None and event.recover_at > event.at_time
            if event.kind == "degrade_link":
                nominal = cluster.resources[event.target].bandwidth_gbps
                assert event.gbps == pytest.approx(nominal * 0.25)

    @pytest.mark.parametrize("kwargs, message", [
        (dict(horizon_seconds=0.0), "horizon_seconds must be positive"),
        (dict(mttf_seconds=0.0), "mttf_seconds must be positive"),
        (dict(mttr_seconds=-1.0), "mttr_seconds must be positive"),
        (dict(link_gbps_factor=1.5), r"link_gbps_factor must be in \(0, 1\)"),
        (dict(domains=()), "at least one failure domain"),
        (dict(domains=("weather",)), "unknown failure domain 'weather'"),
        (dict(domains=("spot",)), "needs faults.spot.gpus"),
    ])
    def test_generator_validates_inputs(self, kwargs, message):
        defaults = dict(seed=1, horizon_seconds=10.0, cluster=two_rack_cluster(),
                        mttf_seconds=1.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError, match=message):
            generate_fault_events(**defaults)

    def test_tor_domain_requires_fabric(self):
        flat = Cluster(ClusterSpec(num_machines=2))
        with pytest.raises(ValueError, match="per_tor_fabric"):
            generate_fault_events(seed=1, horizon_seconds=10.0, cluster=flat,
                                  mttf_seconds=1.0, domains=("tor",))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_seed_yields_a_valid_reproducible_stream(self, seed):
        cluster = two_rack_cluster()
        first = generate_fault_events(seed=seed, horizon_seconds=10.0,
                                      cluster=cluster, mttf_seconds=1.0,
                                      mttr_seconds=2.0,
                                      domains=("gpu", "machine", "rack", "tor",
                                               "link", "spot"),
                                      spot_gpus=("node1:gpu0",))
        second = generate_fault_events(seed=seed, horizon_seconds=10.0,
                                       cluster=cluster, mttf_seconds=1.0,
                                       mttr_seconds=2.0,
                                       domains=("gpu", "machine", "rack", "tor",
                                                "link", "spot"),
                                       spot_gpus=("node1:gpu0",))
        assert first == second
        for index, event in enumerate(first):
            # Every generated event passes the same validation explicit
            # scenario events do.
            from repro.sim.faults import _validate_event
            _validate_event(event, cluster, ("node1:gpu0",), f"generated[{index}]")


# --------------------------------------------------------------------------- #
# Scenario integration and determinism
# --------------------------------------------------------------------------- #
_STORM_SPEC = {
    "cluster": {"num_machines": 4, "gpus_per_machine": 2, "num_tor_switches": 2,
                "nic_gbps": 1.0, "tor_uplink_gbps": 1.0, "core_gbps": 0.5,
                "per_tor_fabric": True},
    "placement": "tor_pack",
    "jobs": [
        {"name": "a", "modules": [400000, 800000, 600000], "batch_size": 4,
         "num_workers": 4, "iterations": 8, "checkpoint_every": 4,
         "storage": "ckpt-store"},
        {"name": "b", "modules": [500000, 500000, 500000], "batch_size": 4,
         "num_workers": 2, "iterations": 8, "arrival_time": 0.3,
         "checkpoint_every": 4, "storage": "ckpt-store"},
    ],
    "faults": {
        "events": [
            {"kind": "fail_rack", "at_time": 1.1, "target": 0, "recover_at": 2.6},
            {"kind": "degrade_link", "at_time": 0.8, "target": "tor1-uplink",
             "gbps": 0.25, "recover_at": 2.0},
            {"kind": "spot_evict", "at_time": 3.0, "target": "node3:gpu1",
             "recover_at": 4.5},
        ],
        "spot": {"gpus": ["node3:gpu1"], "notice_seconds": 0.5},
        "backoff": {"base_seconds": 0.2, "cap_seconds": 2.0},
        "seed": 1234, "horizon_seconds": 6.0, "mttf_seconds": 1.5,
        "mttr_seconds": 2.5, "domains": ["gpu", "machine", "link"],
    },
}


class TestScenarioIntegration:
    def test_fault_storm_scenario_is_bit_reproducible(self):
        first = run_scenario(_STORM_SPEC, include_trace=True)
        second = run_scenario(_STORM_SPEC, include_trace=True)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        trace_kinds = {entry["kind"] for entry in first["trace"]}
        # All three fault families fired in one run.
        assert {"domain_failure", "link_degraded", "spot_evicted",
                "proactive_checkpoint"} <= trace_kinds
        assert all(rec["iterations_done"] == 8 for rec in first["jobs"].values())

    def test_fault_storm_is_sanitizer_clean_and_identical(self, monkeypatch):
        plain = run_scenario(_STORM_SPEC)
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        sanitized = run_scenario(_STORM_SPEC)
        assert json.dumps(plain, sort_keys=True) == \
            json.dumps(sanitized, sort_keys=True)

    def test_scenario_faults_errors_point_at_the_offending_event(self):
        spec = json.loads(json.dumps(_STORM_SPEC))
        spec["faults"]["events"][2]["target"] = "ghost:gpu9"
        with pytest.raises(ValueError, match=r"faults.events\[\d+\]"):
            run_scenario(spec)

    def test_resume_without_preempt_is_rejected_at_build_time(self):
        spec = {"jobs": [{"name": "a", "modules": [1000], "iterations": 2}],
                "resumes": [{"job": "a", "at_time": 2.0}]}
        with pytest.raises(ValueError, match="no\\s+matching entry in 'preemptions'"):
            run_scenario(spec)

    def test_resume_at_or_before_preempt_is_rejected_at_build_time(self):
        spec = {"jobs": [{"name": "a", "modules": [1000], "iterations": 2}],
                "preemptions": [{"job": "a", "at_time": 2.0}],
                "resumes": [{"job": "a", "at_time": 2.0}]}
        with pytest.raises(ValueError, match="must come\\s+after its first preemption"):
            run_scenario(spec)

    def test_preview_faults_expands_the_stochastic_stream(self):
        preview = preview_faults(_STORM_SPEC)
        assert preview["cluster"] == {"machines": 4, "gpus": 8,
                                      "per_tor_fabric": True}
        assert preview["num_events"] == len(preview["events"])
        assert preview["num_events"] > 3  # explicit events plus generated ones
        assert preview == preview_faults(_STORM_SPEC)  # previews are pure

    def test_spot_evicted_trainer_job_replays_to_identical_weights(self):
        """Eviction + proactive checkpoint costs time, never correctness.

        The resume restores the live trainer from the proactive snapshot and
        re-seeks the data loader, so the re-executed iterations reproduce
        the clean run exactly — weights and all (the single-GPU failure
        variant lives in ``tests/test_sim_resources.py``).
        """
        import numpy as np

        from repro.ckpt import CheckpointManager, MemoryBackend
        from repro.core import ClassificationTask
        from repro.baselines import VanillaTrainer
        from repro.data import DataLoader, make_dataset
        from repro import models, optim
        from repro.sim import EventDrivenEngine, TrainerJob, paper_testbed_cluster

        def run(evict):
            full = make_dataset("synthetic_cifar10", num_samples=48, num_classes=4,
                                image_size=8, noise=0.8, seed=0)
            train_ds, _eval_ds = full.split(eval_fraction=0.25)
            model = models.resnet8(num_classes=4, width=0.5, seed=0)
            trainer = VanillaTrainer(model, ClassificationTask(),
                                     DataLoader(train_ds, batch_size=8, seed=0),
                                     None, optim.SGD(model.parameters(), lr=0.1,
                                                     momentum=0.9))
            manager = CheckpointManager(MemoryBackend())
            trainer.configure_checkpointing(manager, checkpoint_every=1)
            job = TrainerJob("t", trainer, iterations=8, num_workers=2,
                             checkpoint_every=2)
            cluster = paper_testbed_cluster()
            scheduler = ClusterScheduler(cluster)
            scheduler.submit(job)
            if evict:
                nominal = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                    trainer.cost_model,
                    workers=paper_testbed_cluster().workers(1, 2)).total
                scheduler.mark_preemptible(["node0:gpu0"],
                                           notice_seconds=nominal * 1.5)
                scheduler.evict_spot("node0:gpu0", at_time=nominal * 4.5,
                                     rejoin_at=nominal * 6.0)
            return trainer, scheduler.run()

        clean_trainer, clean = run(evict=False)
        evicted_trainer, evicted = run(evict=True)
        assert evicted.jobs["t"].evictions == 1
        assert evicted.jobs["t"].failures == 0
        assert evicted.jobs["t"].iterations_done == 8
        assert evicted_trainer.iteration == 8
        assert evicted.makespan > clean.makespan
        clean_state = clean_trainer.model.state_dict()
        evicted_state = evicted_trainer.model.state_dict()
        assert all(np.array_equal(clean_state[key], evicted_state[key])
                   for key in clean_state)

    def test_apply_fault_plan_arms_every_knob(self):
        cluster = two_rack_cluster()
        scheduler = ClusterScheduler(cluster, placement="tor_pack")
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=6,
                                storage="ckpt-store"))
        plan = FaultPlan(
            events=(FaultEvent("degrade_link", 0.5, "core", recover_at=1.5, gbps=0.1),
                    FaultEvent("fail_machine", 0.8, "node0", recover_at=1.2),
                    FaultEvent("spot_evict", 2.5, "node2:gpu0", recover_at=3.0)),
            spot_gpus=("node2:gpu0",), notice_seconds=0.3, backoff=(0.1, 0.4))
        apply_fault_plan(scheduler, plan)
        result = scheduler.run()
        observed = {entry["kind"] for entry in result.trace}
        assert {"link_degraded", "link_restored", "domain_failure",
                "spot_evicted"} <= observed
        assert result.jobs["a"].iterations_done == 6

"""Tests for SimLint: per-rule fixtures, suppressions, baseline, self-check.

Each rule has one fixture module under ``tests/simlint_fixtures/`` holding a
positive case (the rule fires), a suppressed case (an inline justified
``# simlint: disable=...`` silences it) and a clean case (no finding).  The
fixtures are linted as text — they are never imported.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.simlint import ALL_RULES, lint_paths, lint_source, rule_index
from tools.simlint.runner import lint_file, load_baseline, main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "simlint_fixtures"

#: fixture file -> (rule id, live finding lines, suppressed finding lines).
FIXTURE_EXPECTATIONS = {
    "wall_clock.py": ("SIM001", [12, 17], [22]),
    "global_random.py": ("SIM002", [10, 15], [20]),
    "set_iteration.py": ("SIM003", [12, 20, 21, 27], [39]),
    "time_equality.py": ("SIM004", [9, 14], [20]),
    "mutable_default.py": ("SIM005", [6, 12, 18], [24]),
    "public_api.py": ("SIM006", [7, 7, 7, 11, 19, 19, 19], [24, 24, 24]),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("fixture_name", sorted(FIXTURE_EXPECTATIONS))
    def test_fixture_findings(self, fixture_name):
        """Positive cases fire on the expected lines, clean cases stay quiet."""
        rule, live_lines, suppressed_lines = FIXTURE_EXPECTATIONS[fixture_name]
        result = lint_file(FIXTURES / fixture_name)
        assert [f.rule for f in result.findings] == [rule] * len(live_lines)
        assert [f.line for f in result.findings] == live_lines
        assert [f.line for f in result.suppressed] == suppressed_lines
        assert all(f.rule == rule for f in result.suppressed)
        # Every suppression in the fixtures is justified: no SIM000.
        assert not any(f.rule == "SIM000" for f in result.findings)

    def test_every_rule_has_a_fixture(self):
        """The fixture table covers the whole rule catalog."""
        covered = {rule for rule, _, _ in FIXTURE_EXPECTATIONS.values()}
        assert covered == set(rule_index())

    def test_findings_carry_provenance(self):
        """Findings render as path:line:col and keep the offending snippet."""
        result = lint_file(FIXTURES / "wall_clock.py")
        finding = result.findings[0]
        assert finding.render().startswith(f"{finding.path}:{finding.line}:")
        assert "time.time()" in finding.snippet


class TestSuppressions:
    def test_unjustified_suppression_is_sim000(self):
        """A bare disable comment is itself a finding."""
        source = (
            '"""Doc."""\n'
            "import random\n"
            "x = random.random()  # simlint: disable=SIM002\n"
        )
        result = lint_source("fixture.py", source)
        rules = [f.rule for f in result.findings]
        assert rules == ["SIM000"]
        assert result.suppressed and result.suppressed[0].rule == "SIM002"
        assert "justification" in result.findings[0].message

    def test_prose_mentioning_the_syntax_is_not_a_suppression(self):
        """Docstrings quoting '# simlint: disable=SIMxxx' are ignored."""
        source = '"""Use # simlint: disable=SIMxxx -- why to silence a rule."""\n'
        result = lint_source("fixture.py", source)
        assert not result.suppressions
        assert not result.findings

    def test_standalone_comment_covers_next_line(self):
        source = (
            '"""Doc."""\n'
            "import random\n"
            "# simlint: disable=SIM002 -- fixture justification\n"
            "x = random.random()\n"
        )
        result = lint_source("fixture.py", source)
        assert not result.findings
        assert [f.rule for f in result.suppressed] == ["SIM002"]

    def test_suppression_does_not_cover_other_rules(self):
        source = (
            '"""Doc."""\n'
            "import random\n"
            "# simlint: disable=SIM001 -- wrong rule named\n"
            "x = random.random()\n"
        )
        result = lint_source("fixture.py", source)
        assert [f.rule for f in result.findings] == ["SIM002"]


class TestSimCoreScoping:
    def test_sim_core_rules_skip_ordinary_files(self):
        """SIM001/SIM004 stay quiet outside repro/sim without the marker."""
        source = (
            '"""Doc."""\n'
            "import time\n"
            "def f(start_time: float, end_time: float) -> bool:\n"
            '    """Doc."""\n'
            "    t = time.time()\n"
            "    return start_time == end_time\n"
        )
        result = lint_source("scripts/helper.py", source)
        assert not result.findings

    def test_repro_sim_paths_are_sim_core(self):
        source = '"""Doc."""\nimport time\nt = time.time()\n'
        result = lint_source("src/repro/sim/example.py", source)
        assert [f.rule for f in result.findings] == ["SIM001"]

    def test_marker_must_be_a_standalone_comment_line(self):
        """Prose mentioning the marker does not opt a file into sim-core."""
        source = '"""The marker is `# simlint: sim-core` on its own line."""\nimport time\nt = time.time()\n'
        assert not lint_source("scripts/helper.py", source).findings


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_run(self):
        source = '"""Doc."""\nimport random\nx = random.random()\n'
        live = lint_source("fixture.py", source)
        assert not live.ok
        keys = [f.key() for f in live.findings]
        grandfathered = lint_source("fixture.py", source, baseline=keys)
        assert grandfathered.ok
        assert [f.rule for f in grandfathered.baselined] == ["SIM002"]

    def test_committed_baseline_is_empty(self):
        """The repo lints clean: no grandfathered findings."""
        assert load_baseline(REPO_ROOT / "tools" / "simlint" / "baseline.json") == []

    def test_write_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('"""Doc."""\nimport random\nx = random.random()\n')
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
        # With the baseline in force the same file now lints clean.
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        entries = json.loads(baseline.read_text())
        assert len(entries) == 1 and entries[0][1] == "SIM002"


class TestRunner:
    def test_syntax_error_is_a_finding(self):
        result = lint_source("broken.py", "def broken(:\n")
        assert [f.rule for f in result.findings] == ["SIM999"]

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('"""Doc."""\nimport random\nx = random.random()\n')
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "SIM002"
        assert payload["files_checked"] == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_src_lints_clean_via_module_entry_point(self):
        """The acceptance command: python -m tools.simlint src/ exits 0."""
        proc = subprocess.run(
            [sys.executable, "-m", "tools.simlint", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_simlint_lints_itself_clean(self):
        """Self-check: the linter passes its own rules (and the repo has no
        unexplained suppressions anywhere in tools/)."""
        result = lint_paths([REPO_ROOT / "tools"])
        assert result.ok, [f.render() for f in result.findings]
        assert all(s.justified for s in result.suppressions)

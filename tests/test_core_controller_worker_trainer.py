"""Tests for the controller/worker protocol, task adapters and trainers."""

import numpy as np
import pytest

from repro import models, nn, optim
from repro.baselines import VanillaTrainer
from repro.core import (
    ClassificationTask,
    EgeriaConfig,
    EgeriaController,
    EgeriaTrainer,
    EgeriaWorker,
    EvaluationChannels,
    FreezingEngine,
    QuestionAnsweringTask,
    ReferenceModel,
    SegmentationTask,
    TranslationTask,
    make_task,
    parse_layer_modules,
)
from repro.data import DataLoader, make_dataset


def make_setup(window=1, cpu_load_fn=None):
    model = models.resnet8(num_classes=4, width=0.5, seed=0)
    layer_modules = parse_layer_modules(model)
    config = EgeriaConfig(freeze_window=window, eval_interval_iters=1)
    engine = FreezingEngine(layer_modules, config)
    channels = EvaluationChannels()
    reference = ReferenceModel(lambda: models.resnet8(num_classes=4, width=0.5, seed=0))
    controller = EgeriaController(engine, reference, channels, config, cpu_load_fn=cpu_load_fn)
    worker = EgeriaWorker(model, engine, channels)
    return model, engine, controller, worker


class TestControllerWorkerProtocol:
    def test_worker_monitors_frontmost_tail(self):
        _model, engine, _controller, worker = make_setup()
        assert worker.monitored_path == engine.monitored_module.tail_path

    def test_submit_and_evaluate_through_queues(self, rng):
        model, engine, controller, worker = make_setup(window=2)
        controller.initialize_reference(model, iteration=0)
        x = nn.Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
        for i in range(1, 8):
            model(x)
            assert worker.submit_evaluation((x,), iteration=i)
            readings = controller.step(model)
            assert isinstance(readings, list)
        assert controller.evaluations_done > 0
        assert engine.num_frozen() >= 1

    def test_worker_drops_when_queue_full(self, rng):
        model, _engine, _controller, worker = make_setup()
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        model(x)
        accepted = [worker.submit_evaluation((x,), iteration=i) for i in range(10)]
        assert not all(accepted)  # the bounded IQ eventually rejects

    def test_controller_skips_under_cpu_load(self, rng):
        model, _engine, controller, worker = make_setup(cpu_load_fn=lambda: 0.9)
        controller.initialize_reference(model, iteration=0)
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        model(x)
        worker.submit_evaluation((x,), iteration=1)
        readings = controller.step(model)
        assert readings == []
        assert controller.evaluations_skipped_cpu >= 1

    def test_apply_decisions_switches_batchnorm_to_eval(self, rng):
        model, engine, controller, worker = make_setup(window=1)
        controller.initialize_reference(model, iteration=0)
        x = nn.Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
        for i in range(1, 20):
            model(x)
            worker.submit_evaluation((x,), iteration=i)
            controller.step(model)
            if engine.num_frozen() >= 2:
                break
        # At least conv1 and the first residual block (which contains BatchNorm)
        # end up frozen with stationary plasticity.
        assert engine.num_frozen() >= 2
        summary = worker.apply_decisions()
        assert summary["frozen_modules"] >= 2
        bn_layers = [m for frozen in engine.frozen_modules() for block in frozen.blocks
                     for m in block.modules() if isinstance(m, nn.BatchNorm2d)]
        assert bn_layers and all(not bn.training for bn in bn_layers)
        # After unfreeze, training mode is restored.
        engine.unfreeze_all(iteration=100)
        worker.restore_training_mode()
        assert all(bn.training for bn in bn_layers)

    def test_reference_updated_periodically(self, rng):
        model, _engine, controller, worker = make_setup(window=50)
        controller.config.reference_update_interval = 2
        controller.initialize_reference(model, iteration=0)
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        for i in range(1, 10):
            model(x)
            worker.submit_evaluation((x,), iteration=i)
            controller.step(model)
        assert controller.reference.stats.updates >= 1

    def test_summaries(self, rng):
        model, _engine, controller, worker = make_setup()
        controller.initialize_reference(model, iteration=0)
        assert "evaluations_done" in controller.summary()
        assert "monitored_path" in worker.summary()


class TestTaskAdapters:
    def test_make_task_factory(self):
        assert isinstance(make_task("image_classification"), ClassificationTask)
        assert isinstance(make_task("semantic_segmentation"), SegmentationTask)
        assert isinstance(make_task("machine_translation"), TranslationTask)
        assert isinstance(make_task("question_answering"), QuestionAnsweringTask)
        with pytest.raises(KeyError):
            make_task("reinforcement_learning")

    def test_classification_loss_and_eval(self, tiny_model, tiny_dataset):
        task = ClassificationTask()
        batch = tiny_dataset.get_batch(np.arange(8))
        loss = task.loss(task.forward(tiny_model, batch), batch)
        assert loss.item() > 0
        loader = DataLoader(tiny_dataset, batch_size=8, shuffle=False)
        accuracy = task.evaluate(tiny_model, iter(loader))
        assert 0.0 <= accuracy <= 1.0

    def test_segmentation_task(self):
        task = SegmentationTask(num_classes=4)
        model = models.DeepLabV3Lite(num_classes=4, backbone_depth=8, seed=0)
        dataset = make_dataset("synthetic_voc", num_samples=8, num_classes=4, image_size=16, seed=0)
        batch = dataset.get_batch(np.arange(2))
        loss = task.loss(task.forward(model, batch), batch)
        assert loss.item() > 0
        miou = task.evaluate(model, iter(DataLoader(dataset, batch_size=2, shuffle=False)))
        assert 0.0 <= miou <= 1.0

    def test_translation_task_lower_is_better(self):
        task = TranslationTask()
        assert not task.higher_is_better
        assert task.better(3.0, 5.0)
        model = models.transformer_tiny(vocab_size=16, seed=0)
        dataset = make_dataset("synthetic_wmt16", num_samples=16, vocab_size=16, seq_len=6, seed=0)
        batch = dataset.get_batch(np.arange(4))
        loss = task.loss(task.forward(model, batch), batch)
        assert loss.item() > 0
        ppl = task.evaluate(model, iter(DataLoader(dataset, batch_size=4, shuffle=False)))
        assert ppl > 1.0

    def test_qa_task(self):
        task = QuestionAnsweringTask()
        model = models.bert_qa_lite(num_layers=2, vocab_size=64, d_model=16, num_heads=2, d_ff=32)
        dataset = make_dataset("synthetic_squad", num_samples=16, vocab_size=64, seq_len=12, seed=0)
        batch = dataset.get_batch(np.arange(4))
        loss = task.loss(task.forward(model, batch), batch)
        assert loss.item() > 0
        f1 = task.evaluate(model, iter(DataLoader(dataset, batch_size=4, shuffle=False)))
        assert 0.0 <= f1 <= 1.0


def build_cv_pieces(num_samples=64, noise=0.8, num_classes=4):
    full = make_dataset("synthetic_cifar10", num_samples=num_samples, num_classes=num_classes,
                        image_size=8, noise=noise, seed=0)
    train_ds, eval_ds = full.split(eval_fraction=0.25)
    train_loader = DataLoader(train_ds, batch_size=8, seed=0)
    eval_loader = DataLoader(eval_ds, batch_size=8, shuffle=False)
    return train_loader, eval_loader


class TestBaseTrainer:
    def test_fit_records_history_and_learns(self):
        train_loader, eval_loader = build_cv_pieces()
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer = VanillaTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer)
        history = trainer.fit(num_epochs=4)
        assert len(history.records) == 4
        assert history.losses()[-1] < history.losses()[0]
        assert history.total_simulated_time() > 0
        assert history.frozen_fractions() == [0.0] * 4

    def test_stop_at_target(self):
        train_loader, eval_loader = build_cv_pieces(noise=0.3)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer = VanillaTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer)
        history = trainer.fit(num_epochs=10, target_metric=0.5, stop_at_target=True)
        assert len(history.records) <= 10

    def test_requires_optimizer(self):
        train_loader, eval_loader = build_cv_pieces()
        with pytest.raises(ValueError):
            VanillaTrainer(models.resnet8(seed=0), ClassificationTask(), train_loader, eval_loader, None)


class TestEgeriaTrainer:
    def _build(self, tmp_path, num_samples=96, noise=1.5, **config_kwargs):
        full = make_dataset("synthetic_cifar10", num_samples=num_samples, num_classes=4,
                            image_size=8, noise=noise, seed=0)
        train_ds, eval_ds = full.split(eval_fraction=0.25)
        train_loader = DataLoader(train_ds, batch_size=8, seed=0)
        eval_loader = DataLoader(eval_ds, batch_size=8, shuffle=False)
        model_factory = lambda: models.resnet8(num_classes=4, width=0.5, seed=0)
        model = model_factory()
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        scheduler = optim.MultiStepLR(optimizer, milestones=[8], gamma=0.1)
        config = EgeriaConfig(eval_interval_iters=2, freeze_window=2, bootstrap_min_evaluations=2,
                              cache_dir=str(tmp_path), **config_kwargs)
        return EgeriaTrainer(model, model_factory, ClassificationTask(), train_loader, eval_loader,
                             optimizer, scheduler, config=config)

    def test_starts_in_bootstrapping_stage(self, tmp_path):
        trainer = self._build(tmp_path)
        assert trainer.stage == EgeriaTrainer.BOOTSTRAPPING
        trainer.close()

    def test_full_run_freezes_and_keeps_accuracy(self, tmp_path):
        trainer = self._build(tmp_path)
        history = trainer.fit(num_epochs=12)
        assert trainer.stage == EgeriaTrainer.KNOWLEDGE_GUIDED
        assert trainer.engine.num_frozen() >= 1
        assert trainer.freezing_timeline()
        assert max(history.frozen_fractions()) > 0.0
        # Reasonable accuracy on the easy synthetic task.
        assert history.final_metric() > 0.4
        # Cache activity happened once modules froze.
        assert trainer.cache.stats.stores > 0
        summary = trainer.summary()
        assert summary["frozen_prefix"] == trainer.engine.frozen_prefix_length()
        trainer.close()

    def test_simulated_time_cheaper_than_vanilla_at_equal_epochs(self, tmp_path):
        egeria = self._build(tmp_path)
        egeria_history = egeria.fit(num_epochs=12)
        train_loader, eval_loader = build_cv_pieces(num_samples=96, noise=1.5)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        scheduler = optim.MultiStepLR(optimizer, milestones=[8], gamma=0.1)
        vanilla = VanillaTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer, scheduler)
        vanilla_history = vanilla.fit(num_epochs=12)
        assert egeria_history.total_simulated_time() < vanilla_history.total_simulated_time() * 1.05
        egeria.close()

    def test_disable_caching(self, tmp_path):
        trainer = self._build(tmp_path, enable_fp_caching=False)
        trainer.fit(num_epochs=8)
        assert trainer.cache.stats.stores == 0
        assert not trainer.uses_cached_fp()
        trainer.close()

    def test_no_stale_cache_hits_across_unfreeze_refreeze(self, tmp_path):
        """Regression: freeze -> unfreeze -> refreeze must never serve stale hits.

        The old code versioned the cache with ``prefix_version + 1`` after an
        unfreeze and left the activation recorder hooked, so (a) the
        still-training prefix kept populating the cache and (b) a later
        refreeze whose prefix length collided with that version served the
        stale pre-refreeze activations as hits.
        """
        trainer = self._build(tmp_path)
        trainer.stage = EgeriaTrainer.KNOWLEDGE_GUIDED
        trainer.controller.initialize_reference(trainer.model, 0)
        engine = trainer.engine
        act = np.zeros((4, 8), dtype=np.float32)

        # Freeze the first two modules through Algorithm 1's fast path.
        engine.observe_lr(0.1, iteration=0)
        for it in (1, 3):
            engine.stale_counter = engine.window
            engine.check_plasticity(act, act, iteration=it)
        assert engine.frozen_prefix_length() == 2

        loader = trainer.train_loader
        loader.set_epoch(0)
        batch = loader.next_batch()
        trainer.iteration = 3  # odd: skips the periodic evaluation submission
        trainer.on_iteration_end(batch, loss_value=1.0)  # syncs version + recorder
        trainer.task.forward(trainer.model, batch)       # fills the recorder hook
        trainer.on_iteration_end(batch, loss_value=1.0)  # stores the batch
        stores_before_unfreeze = trainer.cache.stats.stores
        assert stores_before_unfreeze > 0
        trainer.task.forward(trainer.model, batch)
        trainer.on_iteration_end(batch, loss_value=1.0)  # legitimate full hit
        assert trainer.fp_skipped_iterations == 1

        # 10x LR drop -> the real epoch hook unfreezes everything.
        trainer.on_epoch_start(epoch=1, lr=0.01)
        assert engine.num_frozen() == 0
        # The recorder must be gone: the prefix trains again, so recording
        # (and serving) its tail would be stale immediately.
        assert trainer._cache_recorder is None
        trainer.task.forward(trainer.model, batch)
        trainer.on_iteration_end(batch, loss_value=1.0)
        assert trainer.cache.stats.stores == stores_before_unfreeze  # no post-unfreeze stores

        # Refreeze three modules in one burst (several queued evaluation
        # results can land in a single on_iteration_end), colliding with the
        # old version counter (2 + 1 == 3 == new frozen_prefix_length).
        engine.observe_lr(0.01, iteration=9)
        for it in (11, 13, 15):
            engine.stale_counter = engine.window
            engine.check_plasticity(act, act, iteration=it)
        assert engine.frozen_prefix_length() == 3
        trainer.iteration = 15
        trainer.on_iteration_end(batch, loss_value=1.0)
        # Nothing stored since the refreeze may be served; the pre-unfreeze
        # activations (different prefix, different weights) must all miss.
        assert trainer.cache.load_batch(batch.indices) is None
        assert trainer.fp_skipped_iterations == 1
        trainer.close()

"""Tests for post-training quantization and calibration observers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import models, nn
from repro.quantization import (
    FLOAT16,
    FLOAT32,
    INT4,
    INT8,
    PRECISIONS,
    ActivationCalibrator,
    MinMaxObserver,
    MovingAverageObserver,
    dequantize_array,
    fake_quantize,
    quantization_error,
    quantize_array,
    quantize_state_dict,
)


class TestQuantizeArray:
    def test_int8_roundtrip_error_bounded(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        q, scale = quantize_array(x, INT8)
        recovered = dequantize_array(q, scale, INT8)
        assert np.abs(x - recovered).max() <= scale * 0.5 + 1e-6

    def test_int8_dtype_and_range(self, rng):
        x = rng.standard_normal(100).astype(np.float32) * 10
        q, _ = quantize_array(x, INT8)
        assert q.dtype == np.int8
        assert q.max() <= 127 and q.min() >= -128

    def test_int4_coarser_than_int8(self, rng):
        x = rng.standard_normal(500).astype(np.float32)
        assert quantization_error(x, INT4) > quantization_error(x, INT8)

    def test_float32_identity(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        assert np.allclose(fake_quantize(x, FLOAT32), x)
        assert quantization_error(x, FLOAT32) == 0.0

    def test_float16_small_error(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert quantization_error(x, FLOAT16) < quantization_error(x, INT8) + 1e-3

    def test_zero_array(self):
        x = np.zeros(10, dtype=np.float32)
        assert np.allclose(fake_quantize(x, INT8), 0.0)

    def test_precision_table_matches_paper(self):
        """Table 2: int8 is 3.59x faster than fp32, fp16 is 1.69x."""
        assert PRECISIONS["int8"].cpu_speedup == pytest.approx(3.59)
        assert PRECISIONS["float16"].cpu_speedup == pytest.approx(1.69)
        assert PRECISIONS["float32"].cpu_speedup == 1.0
        # int4 saves memory but is not faster than int8 (CPU instruction set, §4.1.3).
        assert PRECISIONS["int4"].cpu_speedup == PRECISIONS["int8"].cpu_speedup
        assert PRECISIONS["int4"].memory_ratio < PRECISIONS["int8"].memory_ratio

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_bounded_by_scale(self, values):
        x = np.asarray(values, dtype=np.float32)
        q, scale = quantize_array(x, INT8)
        recovered = dequantize_array(q, scale, INT8)
        assert np.abs(x - recovered).max() <= scale * 0.5 + 1e-4

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_property_fake_quantize_idempotent(self, size):
        x = np.random.default_rng(size).standard_normal(size).astype(np.float32)
        once = fake_quantize(x, INT8)
        twice = fake_quantize(once, INT8)
        assert np.allclose(once, twice, atol=1e-5)


class TestStateDictQuantization:
    def test_quantize_state_dict_preserves_keys_and_shapes(self):
        model = models.resnet8(num_classes=4, seed=0)
        state = model.state_dict()
        quantized = quantize_state_dict(state, INT8)
        assert set(quantized) == set(state)
        for key in state:
            assert quantized[key].shape == state[key].shape

    def test_batchnorm_statistics_skipped(self):
        model = models.resnet8(num_classes=4, seed=0)
        state = model.state_dict()
        key = next(k for k in state if k.endswith("running_mean"))
        state[key] = np.linspace(0.001, 0.002, state[key].size).astype(np.float32)
        quantized = quantize_state_dict(state, INT8)
        assert np.allclose(quantized[key], state[key])

    def test_quantized_model_still_close(self, rng):
        model = models.resnet8(num_classes=4, seed=0)
        clone = models.resnet8(num_classes=4, seed=0)
        clone.load_state_dict(quantize_state_dict(model.state_dict(), INT8))
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        with nn.no_grad():
            original = model(x).data
            quantized = clone(x).data
        assert np.allclose(original, quantized, atol=0.5)


class TestObservers:
    def test_minmax_observer_tracks_extremes(self):
        observer = MinMaxObserver(INT8)
        observer.observe(np.array([1.0, -2.0]))
        observer.observe(np.array([5.0, 0.0]))
        assert observer.min_val == -2.0 and observer.max_val == 5.0
        assert observer.scale == pytest.approx(5.0 / 127)

    def test_observer_default_scale(self):
        assert MinMaxObserver().scale == 1.0

    def test_moving_average_observer_smooths(self):
        observer = MovingAverageObserver(INT8, momentum=0.5)
        observer.observe(np.array([0.0, 10.0]))
        observer.observe(np.array([0.0, 0.0]))
        assert 0.0 < observer.max_val < 10.0

    def test_calibrator_attaches_and_scales(self, rng):
        model = models.resnet8(num_classes=4, seed=0)
        calibrator = ActivationCalibrator()
        handles = calibrator.attach(model, module_names=["layer1", "layer2"])
        with nn.no_grad():
            model(nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        calibrator.detach(handles)
        scales = calibrator.scales()
        assert set(scales) == {"layer1", "layer2"}
        assert all(s > 0 for s in scales.values())
        assert calibrator.num_calibration_batches() == 1

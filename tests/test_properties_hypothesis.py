"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlasticityTracker, SPSCQueue, moving_average, similarity_matrix, sp_loss, windowed_slope
from repro.core.modules import LayerModule
from repro.data import DataLoader, make_dataset
from repro.models.registry import WORKLOADS
from repro.nn import Tensor
from repro.nn.tensor import _unbroadcast
from repro.quantization import INT8, fake_quantize
from repro.sim.cost_model import CostModel, GPUSpec


# --------------------------------------------------------------------------- #
# Autograd invariants
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_unbroadcast_restores_shape(rows, cols):
    grad = np.ones((rows, cols), dtype=np.float32)
    assert _unbroadcast(grad, (1, cols)).shape == (1, cols)
    assert _unbroadcast(grad, (cols,)).shape == (cols,)
    assert np.allclose(_unbroadcast(grad, (1, cols)), rows)


@given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=20))
@settings(max_examples=30, deadline=None)
def test_sum_gradient_is_all_ones(values):
    x = Tensor(np.asarray(values, dtype=np.float32), requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad, 1.0)


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_matmul_grad_shapes_match_operands(n, m):
    rng = np.random.default_rng(n * 13 + m)
    a = Tensor(rng.standard_normal((n, m)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal((m, 3)).astype(np.float32), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == a.shape and b.grad.shape == b.shape


# --------------------------------------------------------------------------- #
# Plasticity invariants
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_similarity_matrix_rows_unit_norm(batch):
    rng = np.random.default_rng(batch)
    activation = rng.standard_normal((batch, 7)).astype(np.float32) + 0.1
    g = similarity_matrix(activation)
    assert g.shape == (batch, batch)
    norms = np.linalg.norm(g, axis=1)
    assert np.all(norms <= 1.0 + 1e-5)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_moving_average_bounded_by_extremes(values, window):
    avg = moving_average(values, window)
    assert min(values) - 1e-6 <= avg <= max(values) + 1e-6


@given(st.floats(min_value=-5, max_value=5, allow_nan=False),
       st.floats(min_value=-10, max_value=10, allow_nan=False),
       st.integers(min_value=3, max_value=15))
@settings(max_examples=30, deadline=None)
def test_windowed_slope_recovers_linear_trend(slope, intercept, length)  :
    series = [intercept + slope * i for i in range(length)]
    assert abs(windowed_slope(series, window=length) - slope) < 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_tracker_smoothed_history_grows_with_records(values):
    tracker = PlasticityTracker(window=5)
    for i, value in enumerate(values):
        tracker.record(value, iteration=i)
    assert len(tracker.smoothed_history) == len(values)
    assert all(np.isfinite(v) for v in tracker.smoothed_history)


# --------------------------------------------------------------------------- #
# Queue and cost-model invariants
# --------------------------------------------------------------------------- #
@given(st.lists(st.integers(), min_size=0, max_size=50), st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_queue_never_exceeds_capacity_and_preserves_order(items, maxsize):
    queue = SPSCQueue(maxsize=maxsize)
    accepted = [item for item in items if queue.put(item)]
    assert len(queue) <= maxsize
    drained = []
    while not queue.empty():
        drained.append(queue.get())
    assert drained == accepted[: len(drained)]
    assert queue.put_count + queue.dropped == len(items)


def _synthetic_modules(param_counts):
    from repro import nn

    modules = []
    for index, count in enumerate(param_counts):
        layer = nn.Linear(1, count)
        modules.append(LayerModule(name=f"m{index}", paths=[f"m{index}"], blocks=[layer],
                                   num_params=sum(p.size for p in layer.parameters()), index=index))
    return modules


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=6))
@settings(max_examples=20, deadline=None)
def test_cost_model_monotone_in_frozen_prefix(param_counts):
    modules = _synthetic_modules(param_counts)
    cost = CostModel(modules, batch_size=4, gpu=GPUSpec())
    times = [cost.iteration(k, cached_fp=False, include_reference_overhead=False).total
             for k in range(len(modules) + 1)]
    assert all(t1 >= t2 - 1e-12 for t1, t2 in zip(times, times[1:]))


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=15, deadline=None)
def test_quantization_preserves_sign(seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(64).astype(np.float32) * seed
    quantized = fake_quantize(x, INT8)
    big = np.abs(x) > np.abs(x).max() * 0.1
    assert np.all(np.sign(quantized[big]) == np.sign(x[big]))


# --------------------------------------------------------------------------- #
# state_dict round-trip across every registry model (checkpoint correctness)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=3, deadline=None)
def test_model_state_dict_roundtrip_exact(workload_name, seed):
    """Arbitrary perturbed states load back bit-exactly into a twin model.

    This is the foundation of the checkpoint subsystem's bit-exact resume:
    ``load_state_dict(state_dict())`` must be the identity for every model
    the registry can train, including buffers (BatchNorm statistics).
    """
    spec = WORKLOADS[workload_name]
    model = spec.model_factory()
    rng = np.random.default_rng(seed)
    perturbed = {key: (value + rng.standard_normal(value.shape).astype(value.dtype)
                       if np.issubdtype(value.dtype, np.floating) else value)
                 for key, value in model.state_dict().items()}

    twin = spec.model_factory()
    twin.load_state_dict(perturbed)
    roundtripped = twin.state_dict()
    assert set(roundtripped) == set(perturbed)
    for key, value in perturbed.items():
        assert np.array_equal(roundtripped[key], np.asarray(value, dtype=roundtripped[key].dtype)), key


# --------------------------------------------------------------------------- #
# Data loader invariants
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=8, max_value=64), st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=15, deadline=None)
def test_loader_epoch_is_permutation_prefix(num_samples, batch_size, epoch)  :
    dataset = make_dataset("synthetic_cifar10", num_samples=num_samples, num_classes=2,
                           image_size=8, seed=0)
    loader = DataLoader(dataset, batch_size=batch_size, seed=1)
    loader.set_epoch(epoch)
    seen = []
    while True:
        batch = loader.next_batch()
        if batch is None:
            break
        seen.extend(int(i) for i in batch.indices)
    assert len(seen) == len(set(seen))
    assert set(seen) <= set(range(num_samples))

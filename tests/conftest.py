"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import models
from repro.core import ClassificationTask, parse_layer_modules
from repro.data import DataLoader, make_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_model():
    """A ResNet-8 small enough for per-test training."""
    return models.resnet8(num_classes=4, width=0.5, seed=0)


@pytest.fixture
def tiny_dataset():
    return make_dataset("synthetic_cifar10", num_samples=48, num_classes=4, image_size=8, noise=0.8, seed=0)


@pytest.fixture
def tiny_loader(tiny_dataset):
    return DataLoader(tiny_dataset, batch_size=8, seed=0)


@pytest.fixture
def classification_task():
    return ClassificationTask()


@pytest.fixture
def tiny_layer_modules(tiny_model):
    return parse_layer_modules(tiny_model)

"""Tests for the autograd tensor engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack, where
from repro.nn.tensor import is_grad_enabled, zeros, ones, randn, arange


def numeric_grad(fn, x, eps=1e-3):
    """Central-difference gradient of a scalar function of a numpy array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_sub_and_div(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        out = (a - b) / b
        out.backward()
        assert np.allclose(a.grad, [0.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 1.0 - a
        assert np.allclose(out.data, [-1.0])
        out2 = 1.0 / a
        assert np.allclose(out2.data, [0.5])

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        assert np.allclose(a.grad, np.full((2, 3), 2.0))


class TestBroadcasting:
    def test_broadcast_add_grad_shapes(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [4.0, 4.0, 4.0])

    def test_broadcast_keepdims_axis(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((2, 1, 4)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (2, 1, 4)
        assert np.allclose(b.grad, np.full((2, 1, 4), 3.0))


class TestMatmul:
    def test_matmul_2d(self, rng):
        a_np = rng.standard_normal((3, 4)).astype(np.float32)
        b_np = rng.standard_normal((4, 2)).astype(np.float32)
        a = Tensor(a_np, requires_grad=True)
        b = Tensor(b_np, requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 2)) @ b_np.T, atol=1e-5)
        assert np.allclose(b.grad, a_np.T @ np.ones((3, 2)), atol=1e-5)

    def test_matmul_batched(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)).astype(np.float32), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matmul_broadcast_weights(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 5)).astype(np.float32), requires_grad=True)
        out = a.matmul(w)
        out.sum().backward()
        assert w.grad.shape == (4, 5)


class TestReductionsAndShape:
    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        a.sum(axis=1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full((2, 4), 1.0 / 8))

    def test_var(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        v = a.var()
        assert np.isclose(v.item(), np.var([1.0, 2.0, 3.0]))

    def test_max_backward_distributes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_reshape_transpose(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        out = a.reshape(6, 4).transpose()
        assert out.shape == (4, 6)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_backward(self):
        a = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        a[2:4].sum().backward()
        assert np.allclose(a.grad, [0, 0, 1, 1, 0, 0])

    def test_pad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = a.pad(((1, 1), (0, 0)))
        assert padded.shape == (4, 2)
        padded.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 2)))

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.swapaxes(1, 2).shape == (2, 4, 3)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "sigmoid", "tanh", "exp"])
    def test_gradcheck_elementwise(self, op, rng):
        x_np = rng.standard_normal(5).astype(np.float64) * 0.5
        x = Tensor(x_np.astype(np.float32), requires_grad=True)
        getattr(x, op)().sum().backward()
        numeric = numeric_grad(lambda arr: float(getattr(Tensor(arr.astype(np.float32)), op)().sum().item()),
                               x_np.copy())
        assert np.allclose(x.grad, numeric, atol=1e-2)

    def test_log(self):
        x = Tensor([1.0, np.e], requires_grad=True)
        x.log().sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0 / np.e], atol=1e-4)

    def test_clip_gradient_mask(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestGraphControl:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad

    def test_backward_requires_grad_error(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulation_and_zero(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        (a * 3).backward()
        assert np.allclose(a.grad, [5.0])
        a.zero_grad()
        assert a.grad is None

    def test_frozen_subgraph_not_visited(self):
        """Leaves without requires_grad receive no gradient (freezing semantics)."""
        frozen = Tensor([2.0], requires_grad=False)
        active = Tensor([3.0], requires_grad=True)
        out = frozen * active
        out.backward()
        assert frozen.grad is None
        assert np.allclose(active.grad, [2.0])

    def test_clone_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        a.clone().sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])


class TestCombinators:
    def test_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestConstructors:
    def test_zeros_ones_randn_arange(self):
        assert zeros(2, 3).shape == (2, 3)
        assert np.allclose(ones(2).data, [1.0, 1.0])
        assert randn(4, rng=np.random.default_rng(0)).shape == (4,)
        assert np.allclose(arange(3).data, [0.0, 1.0, 2.0])

    def test_repr_and_len(self):
        t = Tensor(np.zeros((3, 2)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 3

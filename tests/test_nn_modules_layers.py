"""Tests for Module/Parameter plumbing, layers, blocks, losses and initializers."""

import math

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, init


class TestModulePlumbing:
    def test_named_parameters_paths(self):
        block = nn.BasicBlock(4, 4, rng=np.random.default_rng(0))
        names = dict(block.named_parameters())
        assert "conv1.weight" in names and "bn2.bias" in names

    def test_get_submodule(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        assert isinstance(model.get_submodule("2"), nn.Linear)
        with pytest.raises(KeyError):
            model.get_submodule("missing")

    def test_forward_hook_fires_and_removes(self):
        layer = nn.Linear(3, 2)
        captured = []
        handle = layer.register_forward_hook(lambda m, i, o: captured.append(o.shape))
        layer(Tensor(np.zeros((5, 3), dtype=np.float32)))
        assert captured == [(5, 2)]
        handle.remove()
        layer(Tensor(np.zeros((5, 3), dtype=np.float32)))
        assert len(captured) == 1

    def test_state_dict_roundtrip(self):
        a = nn.Linear(4, 3, rng=np.random.default_rng(0))
        b = nn.Linear(4, 3, rng=np.random.default_rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_freeze_unfreeze(self):
        layer = nn.Linear(4, 4)
        layer.freeze()
        assert layer.is_frozen()
        assert all(not p.requires_grad for p in layer.parameters())
        layer.unfreeze()
        assert not layer.is_frozen()

    def test_num_parameters_trainable_only(self):
        layer = nn.Linear(4, 4)
        total = layer.num_parameters()
        layer.freeze()
        assert layer.num_parameters(trainable_only=True) == 0
        assert layer.num_parameters() == total

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.BatchNorm2d(3), nn.Sequential(nn.BatchNorm2d(3)))
        model.eval()
        assert all(not m.training for m in model.modules())

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml[0].parameters())) == 2
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2), dtype=np.float32)))

    def test_zero_grad(self):
        layer = nn.Linear(3, 3)
        out = layer(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_values(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
        out = layer(x)
        assert out.shape == (5, 3)
        expected = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_linear_3d_input(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 6, 4)).astype(np.float32)))
        assert out.shape == (2, 6, 3)

    def test_conv2d_layer(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_conv2d_invalid_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 8, 3, groups=2)

    def test_batchnorm_normalises_in_training(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.2

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        for _ in range(20):
            bn(Tensor(rng.standard_normal((8, 2, 4, 4)).astype(np.float32) + 5.0))
        bn.eval()
        x = Tensor(np.full((2, 2, 4, 4), 5.0, dtype=np.float32))
        out = bn(x)
        assert abs(out.data.mean()) < 1.0

    def test_layernorm(self, rng):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32) * 4))
        assert abs(out.data.mean(axis=-1)).max() < 1e-3

    def test_embedding_layer(self, rng):
        emb = nn.Embedding(12, 6, rng=rng)
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 6)

    def test_dropout_reseed_replays_mask(self):
        drop = nn.Dropout(0.5, seed=7)
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        first = drop(x).data.copy()
        drop.reseed(7)
        second = drop(x).data.copy()
        assert np.allclose(first, second)

    def test_activations_shapes(self, rng):
        x = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        for layer in (nn.ReLU(), nn.ReLU6(), nn.GELU(), nn.Tanh(), nn.Sigmoid()):
            assert layer(x).shape == (3, 5)

    def test_relu6_caps(self):
        x = Tensor(np.array([-1.0, 3.0, 10.0], dtype=np.float32))
        assert np.allclose(nn.ReLU6()(x).data, [0.0, 3.0, 6.0])

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert nn.Flatten()(x).shape == (2, 48)

    def test_pool_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AdaptiveAvgPool2d(1)(x).shape == (1, 2, 1, 1)


class TestBlocks:
    def test_basic_block_identity_shortcut(self, rng):
        block = nn.BasicBlock(8, 8, rng=rng)
        assert isinstance(block.shortcut, nn.Identity)
        out = block(Tensor(rng.standard_normal((2, 8, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 6, 6)

    def test_basic_block_projection_shortcut(self, rng):
        block = nn.BasicBlock(4, 8, stride=2, rng=rng)
        assert not isinstance(block.shortcut, nn.Identity)
        out = block(Tensor(rng.standard_normal((2, 4, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 3, 3)

    def test_bottleneck(self, rng):
        block = nn.Bottleneck(16, 4, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 16, 4, 4)).astype(np.float32)))
        assert out.shape == (2, 16, 4, 4)

    def test_inverted_residual_uses_residual_when_possible(self, rng):
        block = nn.InvertedResidual(8, 8, stride=1, expand_ratio=2, rng=rng)
        assert block.use_residual
        block2 = nn.InvertedResidual(8, 16, stride=2, expand_ratio=2, rng=rng)
        assert not block2.use_residual

    def test_multi_head_attention_shapes(self, rng):
        attn = nn.MultiHeadAttention(16, 4, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_attention_mask_blocks_future(self, rng):
        attn = nn.MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32))
        mask = np.tril(np.ones((4, 4), dtype=bool))
        out = attn(x, mask=mask)
        assert out.shape == (1, 4, 8)

    def test_attention_invalid_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_encoder_decoder_layers(self, rng):
        enc = nn.TransformerEncoderLayer(16, 4, 32, rng=rng)
        dec = nn.TransformerDecoderLayer(16, 4, 32, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 16)).astype(np.float32))
        memory = enc(x)
        out = dec(x, memory)
        assert out.shape == (2, 5, 16)

    def test_positional_encoding_added(self):
        pe = nn.PositionalEncoding(8, max_len=16)
        x = Tensor(np.zeros((1, 4, 8), dtype=np.float32))
        out = pe(x)
        assert not np.allclose(out.data, 0.0)

    def test_conv_bn_relu(self, rng):
        stem = nn.ConvBNReLU(3, 8, stride=2, rng=rng)
        out = stem(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)
        assert (out.data >= 0).all()


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits_np = rng.standard_normal((4, 5)).astype(np.float32)
        targets = np.array([0, 1, 2, 3])
        loss = nn.cross_entropy(Tensor(logits_np, requires_grad=True), targets)
        shifted = logits_np - logits_np.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -log_probs[np.arange(4), targets].mean()
        assert np.isclose(loss.item(), manual, atol=1e-4)

    def test_cross_entropy_gradient_flows(self, rng):
        logits = Tensor(rng.standard_normal((4, 5)).astype(np.float32), requires_grad=True)
        nn.cross_entropy(logits, np.array([0, 1, 2, 3])).backward()
        assert logits.grad is not None and logits.grad.shape == (4, 5)

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = Tensor(np.array([[10.0, -10.0]], dtype=np.float32))
        plain = nn.cross_entropy(logits, np.array([0]))
        smoothed = nn.cross_entropy(logits, np.array([0]), label_smoothing=0.2)
        assert smoothed.item() > plain.item()

    def test_ignore_index_masks_padding(self, rng):
        logits = Tensor(rng.standard_normal((2, 3, 5)).astype(np.float32))
        targets = np.array([[1, 0, 0], [2, 3, 0]])
        loss_all = nn.cross_entropy(logits, targets)
        loss_masked = nn.cross_entropy(logits, targets, ignore_index=0)
        assert not np.isclose(loss_all.item(), loss_masked.item())

    def test_mse(self):
        loss = nn.MSELoss()(Tensor([1.0, 2.0]), np.array([1.0, 4.0], dtype=np.float32))
        assert np.isclose(loss.item(), 2.0)

    def test_span_extraction_loss(self, rng):
        start = Tensor(rng.standard_normal((3, 8)).astype(np.float32), requires_grad=True)
        end = Tensor(rng.standard_normal((3, 8)).astype(np.float32), requires_grad=True)
        loss = nn.SpanExtractionLoss()(start, end, np.array([1, 2, 3]), np.array([2, 3, 4]))
        loss.backward()
        assert loss.item() > 0
        assert start.grad is not None


class TestInit:
    def test_compute_fans(self):
        assert init.compute_fans((10, 20)) == (20, 10)
        assert init.compute_fans((8, 4, 3, 3)) == (36, 72)
        assert init.compute_fans((7,)) == (7, 7)

    def test_kaiming_bounds(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng=rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 32)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((200, 100), rng=rng)
        expected = math.sqrt(2.0 / 300)
        assert abs(w.std() - expected) < 0.2 * expected

    def test_constant_fills(self):
        assert np.allclose(init.zeros((3, 3)), 0.0)
        assert np.allclose(init.ones((2,)), 1.0)
        assert init.normal((100,), std=0.02, rng=np.random.default_rng(0)).std() < 0.05
        u = init.uniform((100,), -0.5, 0.5, rng=np.random.default_rng(0))
        assert u.min() >= -0.5 and u.max() <= 0.5

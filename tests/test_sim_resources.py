"""Tests for the shared-resource layer: link/storage event queues.

Four families of guarantees:

* **Unit behaviour** — FIFO serialization, cancellation with re-flow of
  queued successors, fair-share (processor-sharing) semantics, name/policy
  validation, removal of the ``comm_scale`` shim, async checkpoint overlap.
* **Hypothesis properties** — byte conservation (resource traffic equals the
  sum of per-job traffic), makespan monotone non-increasing in bandwidth,
  fair-share makespan never exceeding FIFO on identical workloads, and the
  no-contention single-job path agreeing with the closed-form
  :class:`CostModel` within 5%.
* **Topology** — per-ToR fabric resources: rack-local rings cross only their
  own ToR uplink, cross-rack rings additionally cross the core, and the
  ``tor_pack`` placement keeps jobs rack-local — so placement measurably
  changes interference under both disciplines.
* **Integration** — scheduler-level conservation between job records and
  resource summaries, and a :class:`TrainerJob` driven end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import CheckpointManager, MemoryBackend
from repro.core import ClassificationTask
from repro.core.modules import LayerModule
from repro.baselines import VanillaTrainer
from repro.data import DataLoader, make_dataset
from repro import models, optim
from repro.sim import (
    AllReduceModel,
    Cluster,
    ClusterScheduler,
    ClusterSpec,
    CostModel,
    EventDrivenEngine,
    FairShareTimeline,
    ResourcePool,
    ResourceTimeline,
    SharedResource,
    SimJob,
    TrainerJob,
    build_timeline,
    paper_testbed_cluster,
)


def synthetic_modules(param_counts):
    return [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=int(c), index=i)
            for i, c in enumerate(param_counts)]


def make_cost_model(param_counts=(4000, 8000, 6000, 4000), batch_size=16):
    return CostModel(synthetic_modules(param_counts), batch_size=batch_size)


# --------------------------------------------------------------------------- #
# ResourceTimeline unit behaviour
# --------------------------------------------------------------------------- #
class TestResourceTimeline:
    def test_fifo_serialization(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0, kind="storage"))
        start1, end1 = timeline.reserve(0.0, 2.0, num_bytes=10, job="a")
        start2, end2 = timeline.reserve(1.0, 2.0, num_bytes=20, job="b")
        assert (start1, end1) == (0.0, 2.0)
        assert start2 == end1 and end2 == 4.0  # queued behind the first transfer
        late_start, _ = timeline.reserve(10.0, 1.0, job="a")
        assert late_start == 10.0  # idle resource: no artificial delay

    def test_reserve_bytes_prices_by_bandwidth_and_cap(self):
        resource = SharedResource("s", bandwidth_gbps=80.0, kind="storage", latency_seconds=0.0)
        timeline = ResourceTimeline(resource)
        _start, end = timeline.reserve_bytes(0.0, 10**9)
        assert end == pytest.approx(0.1)  # 8e9 bits / 80 Gbps
        _start, capped_end = timeline.reserve_bytes(end, 10**9, cap_gbps=40.0)
        assert capped_end - end == pytest.approx(0.2)  # endpoint NIC caps the rate

    def test_cancel_removes_future_windows_only(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 1.0, num_bytes=5, job="a")   # window [0, 1)
        timeline.reserve(0.0, 1.0, num_bytes=7, job="b")   # queued to [1, 2)
        timeline.reserve(0.0, 1.0, num_bytes=9, job="b")   # queued to [2, 3)
        # Cancelling after t=1.5 drops only the [2, 3) window; the [1, 2)
        # window already started (its bytes were on the wire).
        assert timeline.cancel("b", after_time=1.5) == 1
        assert timeline.total_bytes() == 12
        assert timeline.busy_until == 2.0
        # Cancelling from t=0 removes the remaining future window too.
        assert timeline.cancel("b", after_time=0.0) == 1
        assert timeline.total_bytes() == 5
        assert timeline.busy_until == 1.0

    def test_idle_gap_before_future_window_is_used(self):
        """Causality: a request never waits for a window that starts later.

        The scheduler reserves checkpoint windows ahead of time; a small
        transfer requested while the resource is idle must proceed
        immediately instead of queueing behind a far-future reservation.
        """
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0, kind="storage"))
        timeline.reserve(100.0, 5.0, job="big")           # future window [100, 105)
        start, end = timeline.reserve(0.5, 1.0, job="small")
        assert (start, end) == (0.5, 1.5)                 # served from the idle gap
        # A transfer too large for the gap still queues behind the window.
        start2, _ = timeline.reserve(1.5, 200.0, job="huge")
        assert start2 == 105.0

    def test_pool_validates_names_and_duplicates(self):
        pool = ResourcePool([SharedResource("fab", bandwidth_gbps=100.0)])
        assert "fab" in pool
        with pytest.raises(KeyError, match="unknown resource"):
            pool.require("nope")
        with pytest.raises(ValueError, match="duplicate"):
            pool.add(SharedResource("fab", bandwidth_gbps=10.0))

    def test_invalid_resource_specs_rejected(self):
        with pytest.raises(ValueError):
            SharedResource("s", bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            SharedResource("s", bandwidth_gbps=1.0, kind="tape")
        with pytest.raises(ValueError):
            SharedResource("s", bandwidth_gbps=1.0, latency_seconds=-1.0)
        with pytest.raises(ValueError, match="policy"):
            SharedResource("s", bandwidth_gbps=1.0, policy="lottery")

    def test_policy_selects_timeline_class(self):
        assert isinstance(build_timeline(SharedResource("a", 1.0)), ResourceTimeline)
        assert isinstance(build_timeline(SharedResource("b", 1.0, policy="fair")),
                          FairShareTimeline)
        pool = ResourcePool([SharedResource("fifo-link", 1.0),
                             SharedResource("fair-link", 1.0, policy="fair")])
        assert isinstance(pool.require("fifo-link"), ResourceTimeline)
        assert isinstance(pool.require("fair-link"), FairShareTimeline)

    def test_cluster_spec_policies_reach_default_resources(self):
        cluster = Cluster(ClusterSpec(fabric_policy="fair", storage_policy="fair"))
        assert cluster.resources[Cluster.FABRIC].policy == "fair"
        assert cluster.resources[Cluster.CKPT_STORAGE].policy == "fair"
        engine = EventDrivenEngine(cluster)
        assert isinstance(engine.resource_timeline(Cluster.FABRIC), FairShareTimeline)


# --------------------------------------------------------------------------- #
# Cancellation re-flow: queued successors move up into freed windows
# --------------------------------------------------------------------------- #
class TestCancelReflow:
    def test_queued_successor_moves_into_freed_window(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 1.0, num_bytes=5, job="a")   # [0, 1)
        timeline.reserve(0.0, 1.0, num_bytes=7, job="c")   # queued to [1, 2)
        timeline.reserve(0.0, 1.0, num_bytes=9, job="b")   # queued to [2, 3)
        assert timeline.cancel("c", after_time=0.5) == 1
        # b re-flows into c's freed slot instead of keeping [2, 3).
        windows = {r.job: (r.start, r.end) for r in timeline.records}
        assert windows == {"a": (0.0, 1.0), "b": (1.0, 2.0)}
        assert timeline.total_bytes() == 14  # byte conservation after re-flow
        assert timeline.busy_until == 2.0

    def test_reflow_preserves_request_order_across_jobs(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 2.0, job="victim")           # [0, 2)
        timeline.reserve(0.0, 1.0, num_bytes=1, job="x")   # [2, 3)
        timeline.reserve(0.0, 1.0, num_bytes=2, job="y")   # [3, 4)
        assert timeline.cancel("victim", after_time=0.0) == 1
        windows = [(r.job, r.start, r.end) for r in timeline.records]
        assert windows == [("x", 0.0, 1.0), ("y", 1.0, 2.0)]

    def test_reflow_respects_original_earliest_start(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 3.0, job="victim")           # [0, 3)
        timeline.reserve(5.0, 1.0, job="late")             # idle at [5, 6)
        assert timeline.cancel("victim", after_time=0.0) == 1
        # The survivor asked for t >= 5; the freed [0, 3) window is earlier
        # than it ever wanted, so it must not move.
        (record,) = timeline.records
        assert (record.start, record.end) == (5.0, 6.0)

    def test_reflow_clamps_to_cancellation_time(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(2.0, 2.0, job="victim")           # [2, 4)
        timeline.reserve(0.0, 3.0, job="b")                # 3s does not fit [0, 2) -> [4, 7)
        assert timeline.cancel("victim", after_time=1.0) == 1
        # b was demonstrably not on the wire before t=1, so it restarts at
        # the cancellation instant — not at its original earliest_start=0.
        (record,) = timeline.records
        assert (record.start, record.end) == (1.0, 4.0)

    def test_windows_already_started_do_not_move(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 4.0, num_bytes=1, job="a")   # [0, 4): in flight
        timeline.reserve(4.0, 1.0, num_bytes=2, job="victim")  # [4, 5)
        timeline.reserve(4.0, 1.0, num_bytes=3, job="b")   # [5, 6)
        assert timeline.cancel("victim", after_time=2.0) == 1
        windows = {r.job: (r.start, r.end) for r in timeline.records}
        # a already started (stays); b re-flows into the freed [4, 5) slot.
        assert windows == {"a": (0.0, 4.0), "b": (4.0, 5.0)}

    def test_reflow_never_moves_a_window_later(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        for index in range(6):
            timeline.reserve(0.0, 1.0, job="victim" if index % 2 == 0 else "other")
        before = {r.seq: r.start for r in timeline.records if r.job == "other"}
        timeline.cancel("victim", after_time=0.0)
        after = {r.seq: r.start for r in timeline.records}
        assert all(after[seq] <= start for seq, start in before.items())

    def test_reflow_of_gap_filled_window_never_moves_later(self):
        """Mixed durations: a gap-filled window must not lose its early slot.

        The survivor ``k`` was *requested after* the big transfer ``j`` but
        committed *earlier* (it fit the idle gap in front of j).  Replaying
        re-flow in request order would hand j the gap and push k later;
        committed-start order keeps every survivor at or before its old
        slot.
        """
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        timeline.reserve(0.0, 1.0, job="a")        # [0, 1)
        timeline.reserve(2.0, 1.0, job="victim")   # [2, 3)
        timeline.reserve(0.0, 5.0, job="j")        # 5s does not fit [1, 2) -> [3, 8)
        timeline.reserve(1.0, 1.0, job="k")        # gap-fills [1, 2)
        before = {r.job: r.start for r in timeline.records}
        assert timeline.cancel("victim", after_time=0.0) == 1
        after = {r.job: (r.start, r.end) for r in timeline.records}
        assert after["k"] == (1.0, 2.0)            # kept its gap-filled slot
        assert after["j"] == (2.0, 7.0)            # moved up into victim's slot
        assert all(after[job][0] <= start for job, start in before.items()
                   if job != "victim")


# --------------------------------------------------------------------------- #
# Fair-share (processor-sharing) timelines
# --------------------------------------------------------------------------- #
class TestFairShareTimeline:
    def _timeline(self, gbps=8.0):
        return FairShareTimeline(
            SharedResource("f", bandwidth_gbps=gbps, kind="link", policy="fair"))

    def test_equal_transfers_split_capacity_evenly(self):
        timeline = self._timeline()
        assert timeline.reserve(0.0, 2.0, num_bytes=10, job="a") == (0.0, 2.0)
        # The second admission halves both rates: both complete at t=4.
        assert timeline.reserve(0.0, 2.0, num_bytes=10, job="b") == (0.0, 4.0)
        assert [(r.job, r.start, r.end) for r in timeline.records] == \
            [("a", 0.0, 4.0), ("b", 0.0, 4.0)]

    def test_short_transfer_overtakes_long_one(self):
        """The processor-sharing signature FIFO cannot produce.

        Under FIFO a short transfer arriving behind a long one waits for the
        full window; under fair share it runs at half rate and finishes long
        before the long transfer does.
        """
        timeline = self._timeline()
        assert timeline.reserve(0.0, 10.0, job="long") == (0.0, 10.0)
        start, end = timeline.reserve(1.0, 2.0, job="short")
        assert (start, end) == (1.0, 5.0)          # 2s demand at half rate
        windows = {r.job: r.end for r in timeline.records}
        assert windows["short"] < windows["long"]  # overtakes
        assert windows["long"] == pytest.approx(12.0)  # revised: shared 4s

    def test_work_conservation_and_byte_accounting(self):
        timeline = self._timeline()
        timeline.reserve_bytes(0.0, 10**9, job="a")
        timeline.reserve_bytes(0.0, 2 * 10**9, job="b", kind="checkpoint")
        timeline.reserve_bytes(100.0, 10**9, job="a")
        assert timeline.total_bytes() == 4 * 10**9
        assert timeline.bytes_by_job() == {"a": 2 * 10**9, "b": 2 * 10**9}
        assert timeline.bytes_by_kind() == {"transfer": 2 * 10**9, "checkpoint": 2 * 10**9}
        # busy_seconds counts capacity-seconds of demand, not overlapping
        # wall-clock spans — equal to what FIFO would report.
        fifo = ResourceTimeline(SharedResource("f", bandwidth_gbps=8.0))
        fifo.reserve_bytes(0.0, 10**9)
        fifo.reserve_bytes(0.0, 2 * 10**9)
        fifo.reserve_bytes(100.0, 10**9)
        assert timeline.busy_seconds() == pytest.approx(fifo.busy_seconds())

    def test_cancel_reflows_survivors_earlier(self):
        timeline = self._timeline()
        timeline.reserve(0.0, 4.0, num_bytes=3, job="keep")
        timeline.reserve(0.0, 4.0, num_bytes=5, job="victim")
        assert timeline.records[0].end == pytest.approx(8.0)  # shared
        assert timeline.cancel("victim", after_time=0.0) == 1
        (record,) = timeline.records
        assert (record.job, record.end) == ("keep", 4.0)      # full rate again
        assert timeline.total_bytes() == 3

    def test_cancel_keeps_transfers_already_in_service(self):
        timeline = self._timeline()
        timeline.reserve(0.0, 2.0, job="a")
        assert timeline.cancel("a", after_time=1.0) == 0  # arrived before t=1
        assert len(timeline.records) == 1

    def test_idle_gap_then_second_busy_period(self):
        timeline = self._timeline()
        assert timeline.reserve(0.0, 1.0, job="a") == (0.0, 1.0)
        # The resource is idle in [1, 10); a new arrival starts a fresh busy
        # period at its own earliest_start, at full rate.
        assert timeline.reserve(10.0, 2.0, job="b") == (10.0, 12.0)
        assert timeline.busy_until == 12.0


# --------------------------------------------------------------------------- #
# Weighted fair share: capacity split proportional to per-transfer weight
# --------------------------------------------------------------------------- #
class TestWeightedFairShare:
    def _timeline(self):
        return FairShareTimeline(
            SharedResource("f", bandwidth_gbps=8.0, kind="link", policy="fair"))

    def test_capacity_splits_proportionally_to_weight(self):
        """Two equal demands, weights 2:1 — the classic GPS schedule.

        Until the heavy transfer drains it holds 2/3 of the line rate, so it
        completes its 3 capacity-seconds at t=4.5; the light transfer has
        1.5 left by then and finishes alone at t=6.
        """
        timeline = self._timeline()
        assert timeline.reserve(0.0, 3.0, job="heavy", weight=2.0) == (0.0, 3.0)
        assert timeline.reserve(0.0, 3.0, job="light", weight=1.0) == (0.0, 6.0)
        assert [(r.job, r.start, r.end) for r in timeline.records] == \
            [("heavy", 0.0, 4.5), ("light", 0.0, 6.0)]

    def test_default_weight_matches_legacy_even_split(self):
        explicit, implicit = self._timeline(), self._timeline()
        for t in (explicit, implicit):
            kwargs = {"weight": 1.0} if t is explicit else {}
            t.reserve(0.0, 2.0, num_bytes=10, job="a", **kwargs)
            t.reserve(0.0, 2.0, num_bytes=10, job="b", **kwargs)
            t.reserve(1.0, 4.0, num_bytes=10, job="c", **kwargs)
        assert explicit.records == implicit.records

    def test_sole_transfer_runs_at_full_rate_regardless_of_weight(self):
        timeline = self._timeline()
        # Work conservation: weight only matters relative to *other* active
        # transfers; a lone one always gets the whole resource.
        assert timeline.reserve(0.0, 2.0, job="a", weight=0.25) == (0.0, 2.0)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            self._timeline().reserve(0.0, 1.0, weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            SimJob("a", make_cost_model(), weight=-1.0)

    def test_fifo_ignores_weight(self):
        weighted = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        plain = ResourceTimeline(SharedResource("s", bandwidth_gbps=1.0))
        weighted.reserve(0.0, 2.0, job="a", weight=5.0)
        weighted.reserve(0.0, 2.0, job="b", weight=0.1)
        plain.reserve(0.0, 2.0, job="a")
        plain.reserve(0.0, 2.0, job="b")
        assert weighted.records == plain.records

    def test_weighted_job_completes_faster_on_fair_fabric(self):
        """SimJob.weight plumbs end to end: a weight-4 job's buckets drain
        faster than its weight-1 competitor's on a fair-share fabric."""
        heavy_modules = (400_000, 800_000, 600_000)

        def run(weight_a):
            cluster = Cluster(ClusterSpec(num_machines=4, gpus_per_machine=2,
                                          nic_gbps=1.0, tor_uplink_gbps=1.0,
                                          fabric_policy="fair"))
            scheduler = ClusterScheduler(cluster, placement="round_robin")
            scheduler.submit(SimJob("a", make_cost_model(heavy_modules, batch_size=4),
                                    num_workers=4, iterations=6, weight=weight_a))
            scheduler.submit(SimJob("b", make_cost_model(heavy_modules, batch_size=4),
                                    num_workers=4, iterations=6))
            return scheduler.run()

        even, skewed = run(1.0), run(4.0)
        assert skewed.jobs["a"].completion_seconds < even.jobs["a"].completion_seconds
        # Weights redistribute capacity, never bytes.
        assert {n: r["total_bytes"] for n, r in skewed.resources.items()} == \
            {n: r["total_bytes"] for n, r in even.resources.items()}


@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("reserve"),
                  st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
                  st.floats(min_value=0.0, max_value=15.0, allow_nan=False),
                  st.integers(min_value=0, max_value=10**9),
                  st.sampled_from(["a", "b", "c"]),
                  st.sampled_from([0.5, 1.0, 2.0])),
        st.tuples(st.just("cancel"),
                  st.sampled_from(["a", "b", "c"]),
                  st.floats(min_value=0.0, max_value=40.0, allow_nan=False)),
    ),
    min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_incremental_fair_share_bit_identical_to_resweep_reference(ops):
    """Incremental integration is an optimization, never a semantic change.

    The same random stream of weighted reserves (arrivals deliberately *not*
    sorted, so out-of-order admissions exercise the snapshot-rewind path) and
    cancels is applied to an incremental and a reference-mode
    :class:`FairShareTimeline`; every quote and every piece of final state
    must be exactly equal (``==``, not approx).  The surviving schedule is
    additionally checked against the standalone from-scratch integrator
    :func:`reference_fair_schedule`.
    """
    from repro.sim.resources import reference_fair_schedule

    resource = SharedResource("link", 10.0, policy="fair")
    incremental = FairShareTimeline(resource, incremental=True)
    reference = FairShareTimeline(resource, incremental=False)
    for op in ops:
        if op[0] == "reserve":
            _, arrival, seconds, num_bytes, job, weight = op
            quote_inc = incremental.reserve(arrival, seconds, num_bytes,
                                            job=job, weight=weight)
            quote_ref = reference.reserve(arrival, seconds, num_bytes,
                                          job=job, weight=weight)
            assert quote_inc == quote_ref
        else:
            _, job, after_time = op
            assert incremental.cancel(job, after_time) == \
                reference.cancel(job, after_time)
    assert incremental.transfer_schedule() == reference.transfer_schedule()
    assert incremental.busy_until == reference.busy_until
    assert incremental.as_dict() == reference.as_dict()
    assert incremental.full_resweeps <= reference.full_resweeps
    # The surviving schedule also matches the standalone reference integrator.
    swept = reference_fair_schedule(incremental._transfers)
    assert swept == incremental._ends


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                          st.integers(min_value=1, max_value=10**9)),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_fair_share_makespan_never_exceeds_fifo(transfers):
    """Processor sharing is work-conserving: it never finishes last work later.

    FIFO first-fit can idle the resource while work is queued (a transfer
    too large for the gap before a committed future window waits behind it);
    fair share never idles while demand is pending, so on any identical
    request stream its makespan is at most FIFO's.  Total bytes match
    exactly (conservation under both disciplines).
    """
    fifo = ResourceTimeline(SharedResource("s", 10.0, kind="storage", latency_seconds=1e-4))
    fair = FairShareTimeline(SharedResource("s", 10.0, kind="storage",
                                            latency_seconds=1e-4, policy="fair"))
    for earliest, num_bytes in transfers:
        fifo.reserve_bytes(earliest, num_bytes)
        fair.reserve_bytes(earliest, num_bytes)
    assert fair.busy_until <= fifo.busy_until * (1 + 1e-9) + 1e-9
    assert fair.total_bytes() == fifo.total_bytes()
    assert fair.busy_seconds() == pytest.approx(fifo.busy_seconds())


# --------------------------------------------------------------------------- #
# Per-ToR fabric topology: placement decides which links a job crosses
# --------------------------------------------------------------------------- #
def per_tor_cluster(**overrides):
    """A 4-machine, 2-rack cluster with per-ToR fabric links.

    NIC and ToR uplink speeds are equal so rack-local and cross-rack rings
    have identical *uncontended* all-reduce cost — any measured difference
    between placements is pure shared-resource interference.
    """
    spec = dict(num_machines=4, gpus_per_machine=2, num_tor_switches=2,
                nic_gbps=1.0, tor_uplink_gbps=1.0, per_tor_fabric=True)
    spec.update(overrides)
    return Cluster(ClusterSpec(**spec))


class TestPerTorTopology:
    def test_links_crossed(self):
        cluster = per_tor_cluster()
        rack_local = cluster.machines[0].gpus() + cluster.machines[2].gpus()
        cross_rack = cluster.machines[0].gpus() + cluster.machines[1].gpus()
        assert cluster.links_crossed(cluster.machines[0].gpus()) == []  # one machine
        assert cluster.links_crossed(rack_local) == ["tor0-uplink"]
        assert cluster.links_crossed(cross_rack) == ["tor0-uplink", "tor1-uplink", "core"]
        # Flat clusters have no per-ToR resources to cross.
        assert paper_testbed_cluster().links_crossed(cross_rack) == []

    def test_machines_alternate_tors(self):
        cluster = per_tor_cluster()
        assert [cluster.tor_index(m.name) for m in cluster.machines] == [0, 1, 0, 1]
        with pytest.raises(KeyError, match="unknown machine"):
            cluster.tor_index("node99")

    def test_engine_reserves_on_every_crossed_link(self):
        cluster = per_tor_cluster()
        engine = EventDrivenEngine(cluster)
        workers = cluster.machines[0].gpus() + cluster.machines[1].gpus()
        engine.simulate_iteration(make_cost_model(), workers=workers,
                                  link_resource=cluster.links_crossed(workers),
                                  job_name="x")
        for name in ("tor0-uplink", "tor1-uplink", "core"):
            assert engine.resource_timeline(name).total_bytes() > 0
        assert engine.resource_timeline(Cluster.FABRIC).total_bytes() == 0

    def test_tor_pack_placement_keeps_jobs_rack_local(self):
        cluster = per_tor_cluster()
        scheduler = ClusterScheduler(cluster, placement="tor_pack")
        cost_model = make_cost_model()
        scheduler.submit(SimJob("a", cost_model, num_workers=4, iterations=1))
        scheduler.submit(SimJob("b", cost_model, num_workers=4, iterations=1))
        result = scheduler.run()
        for name in ("a", "b"):
            machines = {worker.split(":")[0] for worker in result.jobs[name].worker_names}
            tors = {cluster.tor_index(machine) for machine in machines}
            assert len(tors) == 1, f"job {name} spans racks: {machines}"
        # Rack-local jobs never touch the shared core fabric.
        assert result.resources[Cluster.CORE]["total_bytes"] == 0

    def test_tor_pack_spills_to_fewest_racks_when_needed(self):
        cluster = per_tor_cluster(num_machines=6)  # 3 machines (6 GPUs) per rack
        scheduler = ClusterScheduler(cluster, placement="tor_pack")
        scheduler.submit(SimJob("big", make_cost_model(), num_workers=8, iterations=1))
        result = scheduler.run()
        machines = {worker.split(":")[0] for worker in result.jobs["big"].worker_names}
        tors = {cluster.tor_index(machine) for machine in machines}
        assert tors == {0, 1}  # cannot fit one rack; spans exactly two

    @pytest.mark.parametrize("policy", ["fifo", "fair"])
    def test_rack_local_interference_below_cross_rack(self, policy):
        """The acceptance scenario: placement locality changes interference.

        Two identical comm-heavy jobs run rack-local on separate ToRs
        (``tor_pack``) vs interleaved across both racks (``round_robin``).
        Rack-local jobs queue on disjoint ToR uplinks and must finish
        measurably earlier than the cross-rack placement, where both jobs
        share both uplinks and the core — under either discipline.  Byte
        conservation: the discipline never changes the traffic, only its
        timing.
        """
        cost_model = make_cost_model((400_000, 800_000, 600_000), batch_size=4)

        def run(placement, fabric_policy=policy):
            cluster = per_tor_cluster(fabric_policy=fabric_policy)
            scheduler = ClusterScheduler(cluster, placement=placement)
            scheduler.submit(SimJob("a", cost_model, num_workers=4, iterations=4))
            scheduler.submit(SimJob("b", cost_model, num_workers=4, iterations=4))
            return scheduler.run()

        local, cross = run("tor_pack"), run("round_robin")
        assert local.makespan < cross.makespan * 0.9, \
            f"rack-local not measurably faster under {policy}"
        # Rack-local: no core traffic; cross-rack: all buckets cross the core.
        assert local.resources[Cluster.CORE]["total_bytes"] == 0
        assert cross.resources[Cluster.CORE]["total_bytes"] > 0
        # Per-link traffic is identical under the *other* discipline too —
        # the policy changes timing, never bytes.
        other_policy = "fifo" if policy == "fair" else "fair"
        other = run("tor_pack", fabric_policy=other_policy)
        assert {name: r["total_bytes"] for name, r in local.resources.items()} == \
            {name: r["total_bytes"] for name, r in other.resources.items()}

    def test_fair_and_fifo_move_identical_bytes(self):
        cost_model = make_cost_model((400_000, 800_000, 600_000), batch_size=4)
        totals = {}
        for policy in ("fifo", "fair"):
            cluster = per_tor_cluster(fabric_policy=policy, storage_policy=policy)
            scheduler = ClusterScheduler(cluster, placement="round_robin")
            scheduler.submit(SimJob("a", cost_model, num_workers=4, iterations=3,
                                    checkpoint_every=1))
            scheduler.submit(SimJob("b", cost_model, num_workers=4, iterations=3,
                                    checkpoint_every=1))
            result = scheduler.run()
            totals[policy] = {name: r["total_bytes"]
                              for name, r in result.resources.items()}
        assert totals["fifo"] == totals["fair"]
        assert sum(totals["fifo"].values()) > 0


# --------------------------------------------------------------------------- #
# Hypothesis properties
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=0, max_value=10**9)),
                min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_bytes_through_resource_equal_sum_of_per_job_traffic(transfers):
    """Conservation: resource-level bytes == the sum of every job's traffic."""
    timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=10.0, kind="storage"))
    expected = {}
    clock = 0.0
    for job, num_bytes in transfers:
        timeline.reserve_bytes(clock, num_bytes, job=job)
        expected[job] = expected.get(job, 0) + num_bytes
        clock += 0.01
    assert timeline.total_bytes() == sum(expected.values())
    assert timeline.bytes_by_job() == {k: v for k, v in expected.items()}


@given(
    st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                       st.integers(min_value=1, max_value=10**9)),
             min_size=1, max_size=25),
    st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
    st.floats(min_value=1.01, max_value=20.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_makespan_monotone_non_increasing_in_bandwidth(transfers, base_gbps, speedup):
    """A faster resource never finishes the same transfer sequence later.

    The FIFO discipline makes this provable: with every duration scaled down,
    each start and end time can only move earlier, window by window.
    """
    transfers = sorted(transfers)  # scheduler requests arrive in time order
    ends = []
    for gbps in (base_gbps, base_gbps * speedup):
        timeline = ResourceTimeline(
            SharedResource("s", bandwidth_gbps=gbps, kind="storage", latency_seconds=1e-4))
        last_end = 0.0
        for earliest, num_bytes in transfers:
            _start, last_end = timeline.reserve_bytes(earliest, num_bytes)
        ends.append(last_end)
    slow_makespan, fast_makespan = ends
    assert fast_makespan <= slow_makespan + 1e-12


@given(st.lists(st.integers(min_value=100, max_value=50_000), min_size=2, max_size=8),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=30, deadline=None)
def test_no_contention_single_job_within_5pct_of_closed_form(param_counts, raw_prefix):
    """A lone job routed through the shared fabric still matches the fast path."""
    prefix = min(raw_prefix, len(param_counts) - 1)
    cost_model = make_cost_model(param_counts)
    cluster = paper_testbed_cluster()
    workers = cluster.workers(num_machines=3, gpus_per_machine=2)
    spb = AllReduceModel(cluster).seconds_per_byte(workers)

    engine = EventDrivenEngine(cluster)
    # The linear per-byte pricing is the validated closed-form contract (the
    # all-reduce latency term is deliberately outside it); the point here is
    # that routing through the shared fabric does not perturb a lone job.
    event = engine.simulate_iteration(cost_model, workers=workers, frozen_prefix=prefix,
                                      comm_seconds_per_byte=spb,
                                      link_resource=Cluster.FABRIC, job_name="solo",
                                      include_reference_overhead=False).total
    closed = cost_model.iteration(frozen_prefix=prefix, comm_seconds_per_byte=spb,
                                  include_reference_overhead=False).total
    assert closed > 0.0
    assert abs(event - closed) / closed <= 0.05


# --------------------------------------------------------------------------- #
# Engine integration: shared links (the comm_scale shim is gone)
# --------------------------------------------------------------------------- #
class TestEngineSharedResources:
    def test_fabric_routing_without_contention_is_identical(self):
        cost_model = make_cost_model()
        cluster = paper_testbed_cluster()
        workers = cluster.workers(2, 2)
        plain = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
            cost_model, workers=workers)
        routed = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
            cost_model, workers=workers, link_resource=Cluster.FABRIC, job_name="solo")
        assert routed.as_dict() == plain.as_dict()

    def test_concurrent_jobs_delay_each_other_on_the_fabric(self):
        cost_model = make_cost_model()
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        first = engine.simulate_iteration(cost_model, workers=cluster.workers(2, 2),
                                          link_resource=Cluster.FABRIC, job_name="a")
        second = engine.simulate_iteration(cost_model, workers=cluster.workers(2, 2),
                                           link_resource=Cluster.FABRIC, job_name="b")
        assert second.total > first.total  # queued behind job a's buckets
        fabric = engine.resources.require(Cluster.FABRIC)
        assert set(fabric.bytes_by_job()) == {"a", "b"}

    def test_unknown_link_resource_rejected_at_call_time(self):
        engine = EventDrivenEngine(paper_testbed_cluster())
        with pytest.raises(KeyError, match="unknown resource"):
            engine.simulate_iteration(make_cost_model(), link_resource="warp-fabric")
        with pytest.raises(KeyError, match="unknown resource"):
            engine.storage_transfer(10, 0.0, "warp-store")

    def test_comm_scale_shim_is_gone(self):
        """The deprecated fair-share multiplier was removed, not just hidden.

        Cross-job contention is modelled exclusively with shared resources;
        passing the old knob must fail loudly instead of silently scaling.
        """
        with pytest.raises(TypeError):
            EventDrivenEngine(comm_scale=2.0)
        engine = EventDrivenEngine()
        assert not hasattr(type(engine), "comm_scale")
        # Per-byte pricing is unscaled: exactly bytes * seconds_per_byte.
        assert engine.transfer_seconds(1000, seconds_per_byte=1e-9) == pytest.approx(1e-6)


# --------------------------------------------------------------------------- #
# Scheduler integration: storage contention, async overlap, conservation
# --------------------------------------------------------------------------- #
class TestSchedulerSharedStorage:
    def _run(self, stagger=0.0, asynchronous=False, cost_model=None, iterations=6,
             checkpoint_every=2):
        cost_model = cost_model or make_cost_model()
        scheduler = ClusterScheduler(paper_testbed_cluster(), placement="fifo")
        scheduler.submit(SimJob("a", cost_model, num_workers=2, iterations=iterations,
                                checkpoint_every=checkpoint_every,
                                async_checkpoint=asynchronous))
        scheduler.submit(SimJob("b", cost_model, num_workers=2, iterations=iterations,
                                checkpoint_every=checkpoint_every,
                                async_checkpoint=asynchronous, arrival_time=stagger))
        return scheduler.run()

    def test_concurrent_checkpointers_finish_later_than_staggered(self):
        concurrent = self._run(stagger=0.0)
        stagger = concurrent.jobs["a"].iteration_seconds[1]  # one steady iteration
        staggered = self._run(stagger=stagger)
        assert concurrent.jobs["b"].completion_seconds > staggered.jobs["b"].completion_seconds
        assert concurrent.jobs["b"].checkpoint_seconds > staggered.jobs["b"].checkpoint_seconds

    def test_async_checkpoint_overlaps_with_compute(self):
        sync = self._run(asynchronous=False)
        overlapped = self._run(asynchronous=True)
        assert overlapped.makespan < sync.makespan
        # The snapshots still happened and still moved the same bytes.
        assert overlapped.jobs["a"].checkpoints_taken == sync.jobs["a"].checkpoints_taken
        assert overlapped.jobs["a"].checkpoint_bytes_written == \
            sync.jobs["a"].checkpoint_bytes_written

    def test_job_records_and_resource_summary_conserve_bytes(self):
        result = self._run()
        storage = result.resources[Cluster.CKPT_STORAGE]
        for name in ("a", "b"):
            record = result.jobs[name]
            assert storage["bytes_by_job"][name] == \
                record.checkpoint_bytes_written + record.restore_bytes_read
        assert storage["total_bytes"] == sum(storage["bytes_by_job"].values())

    def test_unknown_job_resource_names_rejected_at_submit(self):
        scheduler = ClusterScheduler(paper_testbed_cluster())
        with pytest.raises(KeyError, match="unknown resource"):
            scheduler.submit(SimJob("a", make_cost_model(), storage="warp-store"))
        with pytest.raises(KeyError, match="unknown resource"):
            scheduler.submit(SimJob("b", make_cost_model(), link="warp-fabric"))

    def test_small_job_checkpoint_not_delayed_by_big_jobs_future_window(self):
        """Mixed job sizes: non-overlapping transfers stay uncontended.

        A tiny job's checkpoints must not queue behind a big job's
        checkpoint window reserved far in the future (the resource is idle
        in between) — the regression the first-fit placement fixes.
        """
        big = make_cost_model((5_000_000,), batch_size=16)
        small = make_cost_model((1_000,), batch_size=16)
        alone = ClusterScheduler(paper_testbed_cluster())
        alone.submit(SimJob("small", small, num_workers=2, iterations=3, checkpoint_every=1))
        alone_record = alone.run().jobs["small"]

        mixed = ClusterScheduler(paper_testbed_cluster())
        mixed.submit(SimJob("big", big, num_workers=2, iterations=3, checkpoint_every=1))
        mixed.submit(SimJob("small", small, num_workers=2, iterations=3, checkpoint_every=1))
        mixed_record = mixed.run().jobs["small"]
        # The small job's transfers all complete long before the big job's
        # first checkpoint window opens, so its record is unchanged.
        assert mixed_record.checkpoint_seconds == pytest.approx(alone_record.checkpoint_seconds)
        assert mixed_record.completion_seconds == pytest.approx(alone_record.completion_seconds)

    def test_resize_during_async_drain_commits_each_checkpoint_once(self):
        """A resize mid-drain must not double-commit or regress the watermark."""
        cluster = Cluster(ClusterSpec(num_machines=2, gpus_per_machine=2, storage_gbps=0.05))
        scheduler = ClusterScheduler(cluster)
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=10,
                                checkpoint_every=1, async_checkpoint=True))
        iteration = EventDrivenEngine(cluster).simulate_iteration(
            make_cost_model(), workers=cluster.workers(1, 2)).total
        scheduler.resize_job("a", +1, at_time=iteration * 3.5)
        result = scheduler.run()
        commits = [entry for entry in result.trace
                   if entry["kind"] == "checkpoint" and entry["job"] == "a"]
        committed_iterations = [entry["iteration"] for entry in commits]
        assert len(committed_iterations) == len(set(committed_iterations)), \
            f"checkpoint committed twice: {committed_iterations}"
        assert committed_iterations == sorted(committed_iterations), \
            f"checkpoint watermark regressed: {committed_iterations}"
        # Periodic commits plus the synchronized migration checkpoint.
        migrations = [entry for entry in result.trace if entry["kind"] == "migrate"]
        assert result.jobs["a"].checkpoints_taken == len(commits) + len(migrations)

    def test_cluster_add_resource_after_scheduler_construction(self):
        """Resources declared on the cluster late are adopted by the engine."""
        cluster = paper_testbed_cluster()
        scheduler = ClusterScheduler(cluster)
        cluster.add_resource(SharedResource("late-store", bandwidth_gbps=5.0, kind="storage"))
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=3,
                                checkpoint_every=1, storage="late-store"))
        result = scheduler.run()
        assert result.resources["late-store"]["total_bytes"] > 0

    def test_custom_storage_resource_is_used(self):
        cluster = paper_testbed_cluster()
        cluster.add_resource(SharedResource("scratch", bandwidth_gbps=5.0, kind="storage"))
        scheduler = ClusterScheduler(cluster)
        scheduler.submit(SimJob("a", make_cost_model(), num_workers=2, iterations=4,
                                checkpoint_every=2, storage="scratch"))
        result = scheduler.run()
        assert result.resources["scratch"]["total_bytes"] > 0
        assert result.resources[Cluster.CKPT_STORAGE]["total_bytes"] == 0

    def test_storage_bandwidth_monotone_on_makespan(self):
        makespans = []
        for gbps in (1.0, 4.0, 16.0):
            cost_model = make_cost_model()
            cluster = Cluster(ClusterSpec(num_machines=2, gpus_per_machine=2,
                                          storage_gbps=gbps))
            scheduler = ClusterScheduler(cluster)
            scheduler.submit(SimJob("a", cost_model, num_workers=2, iterations=5,
                                    checkpoint_every=1))
            scheduler.submit(SimJob("b", cost_model, num_workers=2, iterations=5,
                                    checkpoint_every=1))
            makespans.append(scheduler.run().makespan)
        assert makespans[0] >= makespans[1] >= makespans[2]
        assert makespans[0] > makespans[2]  # the sweep actually bites


# --------------------------------------------------------------------------- #
# Mid-run capacity changes (degraded links, fault model)
# --------------------------------------------------------------------------- #
class TestCapacityChanges:
    def test_fifo_requote_is_byte_conserving_and_piecewise_exact(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0))
        timeline.reserve(0.0, 2.0, num_bytes=16, job="a")   # in flight at t=1
        timeline.reserve(0.0, 2.0, num_bytes=16, job="b")   # queued to [2, 4)
        timeline.set_capacity(1.0, 4.0)                     # half rate at t=1
        records = {record.job: record for record in timeline.records}
        # a keeps its start; the second half of its bytes drain at half rate.
        assert (records["a"].start, records["a"].end) == (0.0, pytest.approx(3.0))
        # b re-quotes its full duration and re-flows behind a.
        assert (records["b"].start, records["b"].end) == \
            (pytest.approx(3.0), pytest.approx(7.0))
        assert timeline.total_bytes() == 32                 # payload untouched
        assert timeline.capacity_gbps == 4.0
        # New quotes price at the degraded rate (no latency on this resource).
        assert timeline.transfer_seconds(10**9) == pytest.approx(2.0)

    def test_fifo_closed_windows_keep_their_committed_slots(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0))
        timeline.reserve(0.0, 1.0, num_bytes=8, job="done")
        timeline.set_capacity(2.0, 2.0)
        record = timeline.records[0]
        assert (record.start, record.end) == (0.0, 1.0)  # bytes were on the wire

    def test_restoring_capacity_speeds_queued_windows_back_up(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0))
        timeline.reserve(0.0, 1.0, num_bytes=8, job="a")
        timeline.reserve(0.0, 1.0, num_bytes=8, job="b")
        timeline.set_capacity(0.5, 4.0)   # degrade mid-a
        timeline.set_capacity(2.0, 8.0)   # restore before b finishes
        records = {record.job: record for record in timeline.records}
        assert records["a"].end == pytest.approx(1.5)
        # b started at 1.5 under the degraded rate, then re-quoted again on
        # the restore: 0.5s of work remained at t=2.0 of the original 1.0s.
        assert records["b"].start == pytest.approx(1.5)
        assert records["b"].end == pytest.approx(2.75)
        assert timeline.total_bytes() == 16

    def test_capacity_changes_validated(self):
        timeline = ResourceTimeline(SharedResource("s", bandwidth_gbps=8.0))
        with pytest.raises(ValueError, match="capacity must be positive"):
            timeline.set_capacity(1.0, 0.0)
        timeline.set_capacity(2.0, 4.0)
        with pytest.raises(ValueError, match="time order"):
            timeline.set_capacity(1.0, 8.0)
        assert timeline.capacity_profile() == ((2.0, 0.5),)

    def test_fair_share_capacity_drop_stretches_active_transfers(self):
        def run(drop):
            timeline = FairShareTimeline(SharedResource("f", bandwidth_gbps=8.0,
                                                        policy="fair"))
            ends = [timeline.reserve(0.0, 2.0, num_bytes=16, job="a")[1]]
            ends.append(timeline.reserve(0.0, 2.0, num_bytes=16, job="b")[1])
            if drop:
                timeline.set_capacity(1.0, 4.0)
            return timeline

        clean, dropped = run(False), run(True)
        assert clean.total_bytes() == dropped.total_bytes() == 32
        # Both transfers share the link, so both finish later than the
        # no-fault run; service rendered before the change is untouched.
        for job in ("a", "b"):
            clean_end = max(r.end for r in clean.records if r.job == job)
            dropped_end = max(r.end for r in dropped.records if r.job == job)
            assert dropped_end > clean_end

    def test_fair_share_sole_transfer_integrates_the_profile_exactly(self):
        timeline = FairShareTimeline(SharedResource("f", bandwidth_gbps=8.0,
                                                    policy="fair"))
        _start, end = timeline.reserve(0.0, 4.0, num_bytes=32, job="a")
        assert end == pytest.approx(4.0)
        timeline.set_capacity(2.0, 4.0)  # half rate with 2s of work left
        new_end = max(record.end for record in timeline.records)
        assert new_end == pytest.approx(6.0)  # 2s done + 2s of work at 1/2 rate

    def test_scheduler_level_degradation_conserves_bytes(self):
        """End to end: a degraded link changes timing, never byte accounting."""
        def run(degrade):
            cluster = Cluster(ClusterSpec(num_machines=2, gpus_per_machine=2,
                                          nic_gbps=1.0, tor_uplink_gbps=1.0))
            scheduler = ClusterScheduler(cluster)
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=4,
                                    iterations=6, checkpoint_every=2,
                                    storage="ckpt-store"))
            if degrade:
                # The clean run takes ~0.022s; degrade mid-run, restore late.
                scheduler.degrade_link("fabric", gbps=0.2, at_time=0.005,
                                       restore_at=0.015)
            return scheduler.run()

        clean, degraded = run(False), run(True)
        assert degraded.makespan > clean.makespan
        for name in ("fabric", "ckpt-store"):
            assert degraded.resources[name]["total_bytes"] == \
                clean.resources[name]["total_bytes"]

    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10**8), min_size=1,
                       max_size=6),
        change_at=st.floats(min_value=0.01, max_value=5.0),
        factor=st.floats(min_value=0.05, max_value=4.0),
        policy=st.sampled_from(["fifo", "fair"]),
    )
    def test_requote_conserves_bytes_under_any_change(self, sizes, change_at,
                                                      factor, policy):
        resource = SharedResource("r", bandwidth_gbps=8.0, policy=policy)
        timeline = build_timeline(resource)
        for index, num_bytes in enumerate(sizes):
            timeline.reserve_bytes(0.25 * index, num_bytes, job=f"j{index % 3}")
        before = timeline.bytes_by_job()
        timeline.set_capacity(change_at, 8.0 * factor)
        assert timeline.bytes_by_job() == before
        assert timeline.total_bytes() == sum(sizes)
        for record in timeline.records:
            assert record.end >= record.start >= 0.0


# --------------------------------------------------------------------------- #
# TrainerJob: a real trainer inside the simulated cluster
# --------------------------------------------------------------------------- #
class TestTrainerJob:
    def _trainer(self):
        full = make_dataset("synthetic_cifar10", num_samples=48, num_classes=4,
                            image_size=8, noise=0.8, seed=0)
        train_ds, _eval_ds = full.split(eval_fraction=0.25)
        train_loader = DataLoader(train_ds, batch_size=8, seed=0)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        return VanillaTrainer(model, ClassificationTask(), train_loader, None, optimizer)

    def test_trainer_backed_job_runs_and_charges_real_bytes(self):
        trainer = self._trainer()
        manager = CheckpointManager(MemoryBackend())
        trainer.configure_checkpointing(manager, checkpoint_every=1)
        job = TrainerJob("t", trainer, iterations=8, num_workers=2, checkpoint_every=3)
        scheduler = ClusterScheduler(paper_testbed_cluster())
        scheduler.submit(job)
        result = scheduler.run()
        record = result.jobs["t"]
        assert record.iterations_done == 8
        assert trainer.iteration == 8  # the real trainer actually stepped
        assert record.checkpoints_taken == 2
        # Simulated checkpoint volume is the manager's actual incremental bytes.
        assert record.checkpoint_bytes_written == \
            sum(info["bytes_written"] for info in manager.history())
        assert len(job.prefix_series) == 8

    def test_trainer_job_rollback_after_failure_is_bit_exact(self):
        """A failed trainer-backed job replays to the same final weights.

        The rollback path restores the live trainer from the matching real
        checkpoint and re-seeks the data loader, so the re-executed
        iterations reproduce the clean run exactly — weights and all.
        """
        import numpy as np

        def run(fail: bool):
            trainer = self._trainer()
            manager = CheckpointManager(MemoryBackend())
            trainer.configure_checkpointing(manager, checkpoint_every=1)
            job = TrainerJob("t", trainer, iterations=8, num_workers=2, checkpoint_every=2)
            scheduler = ClusterScheduler(paper_testbed_cluster())
            scheduler.submit(job)
            if fail:
                nominal = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                    trainer.cost_model, workers=paper_testbed_cluster().workers(1, 2)).total
                scheduler.inject_failure("node0:gpu0", at_time=nominal * 4.5)
            result = scheduler.run()
            return trainer, result

        clean_trainer, clean = run(fail=False)
        failed_trainer, failed = run(fail=True)
        assert failed.jobs["t"].failures == 1
        assert failed.jobs["t"].restores == 1
        assert failed.jobs["t"].iterations_done == 8
        assert failed_trainer.iteration == 8
        # Recovery costs time but never correctness.
        assert failed.makespan > clean.makespan
        clean_state = clean_trainer.model.state_dict()
        failed_state = failed_trainer.model.state_dict()
        assert all(np.array_equal(clean_state[key], failed_state[key]) for key in clean_state)

    def test_trainer_job_epochs_wrap_and_step_the_lr_schedule(self):
        trainer = self._trainer()
        per_epoch = len(trainer.train_loader)
        job = TrainerJob("t", trainer, iterations=per_epoch + 2)
        scheduler = ClusterScheduler(paper_testbed_cluster())
        scheduler.submit(job)
        scheduler.run()
        assert trainer.iteration == per_epoch + 2
        assert job._epoch == 1  # crossed exactly one epoch boundary

"""Tests for the steady-state fast-forward layer of the event engine.

Three families of guarantees:

* **Bit-identity** — an engine with memoization on produces results (totals,
  per-worker ends, makespans, per-link bytes, checkpoint bytes) exactly
  equal to the event-by-event reference path, at the engine, scheduler,
  trainer-backed-job and scenario levels — with batched fast-forward on or
  off — plus a hypothesis property over randomized multi-job scenarios.
* **Invalidation matrix** — every dynamics transition forces a live
  re-simulation whose timing differs from the cached steady state: a freeze
  event, an elastic resize, a checkpointed migration, a second job arriving
  on a crossed link, and a cancel/re-flow (preempt + resume).
* **Counters** — ``events_processed`` / ``iterations_fast_forwarded`` /
  ``cache_hit_rate`` surface through the engine, :class:`SchedulerResult`
  and the scenario report.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import CheckpointManager, MemoryBackend
from repro.core import ClassificationTask
from repro.core.modules import LayerModule
from repro.baselines import VanillaTrainer
from repro.data import DataLoader, make_dataset
from repro import models, optim
from repro.sim import (
    Cluster,
    ClusterScheduler,
    ClusterSpec,
    CostModel,
    EventDrivenEngine,
    SchedulePolicy,
    SimJob,
    TrainerJob,
    paper_testbed_cluster,
    run_scenario,
)


def make_cost_model(param_counts=(4000, 8000, 6000, 4000), batch_size=16):
    modules = [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=int(c), index=i)
               for i, c in enumerate(param_counts)]
    return CostModel(modules, batch_size=batch_size)


def result_dict(scheduler_result):
    """Scheduler result for equality checks: everything but the perf counters
    (those legitimately differ between the memoized and reference paths)."""
    payload = scheduler_result.as_dict()
    payload.pop("perf")
    return payload


# --------------------------------------------------------------------------- #
# Engine-level bit-identity and counters
# --------------------------------------------------------------------------- #
class TestEngineFastForward:
    def test_simulate_run_hits_cache_and_is_bit_identical(self):
        cost_model = make_cost_model()
        reference = EventDrivenEngine(memoize=False)
        memoized = EventDrivenEngine()
        kwargs = dict(frozen_prefix=1, cached_fp=True, include_reference_overhead=True,
                      comm_seconds_per_byte=1e-10)
        expected = [r.as_dict() for r in reference.simulate_run(cost_model, 50, **kwargs)]
        observed = [r.as_dict() for r in memoized.simulate_run(cost_model, 50, **kwargs)]
        assert observed == expected
        assert memoized.iterations_simulated == 1
        assert memoized.iterations_fast_forwarded == 49
        assert reference.iterations_fast_forwarded == 0
        # Fast-forwarded iterations process no events at all.
        assert memoized.events_processed == reference.events_processed // 50
        assert memoized.perf_counters()["cache_hit_rate"] == pytest.approx(49 / 50)

    def test_freeze_event_invalidates_and_changes_timing(self):
        engine = EventDrivenEngine()
        cost_model = make_cost_model()
        steady = engine.simulate_iteration(cost_model, frozen_prefix=0)
        cached = engine.simulate_iteration(cost_model, frozen_prefix=0)
        assert engine.iterations_fast_forwarded == 1
        assert cached.as_dict() == steady.as_dict()
        frozen = engine.simulate_iteration(cost_model, frozen_prefix=2)
        # The freeze event forced a live re-simulation with a new timing.
        assert engine.iterations_simulated == 2
        assert frozen.total < cached.total

    def test_speed_change_invalidates(self):
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        workers = cluster.workers(2, 2)
        nominal = engine.simulate_iteration(make_cost_model(), workers=workers)
        engine.simulate_iteration(make_cost_model(), workers=workers)
        assert engine.iterations_fast_forwarded == 1
        engine.set_gpu_speed(workers[0].name, 0.5)
        slowed = engine.simulate_iteration(make_cost_model(), workers=workers)
        assert engine.iterations_simulated == 2
        assert slowed.total > nominal.total

    def test_second_job_on_crossed_link_forces_live_resimulation(self):
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        cost_model = make_cost_model()
        workers = cluster.workers(2, 2)

        first = engine.simulate_iteration(cost_model, workers=workers,
                                          link_resource=Cluster.FABRIC, job_name="a")
        second = engine.simulate_iteration(cost_model, workers=workers,
                                           link_resource=Cluster.FABRIC, job_name="a",
                                           start_time=first.end_time)
        assert engine.iterations_fast_forwarded == 1  # quiet link: replayed
        assert second.total == first.total
        # Another job's transfer lands on the fabric, overlapping the next
        # iteration: the quiet-link precondition fails and the iteration is
        # re-simulated with genuinely different timing.
        engine.resource_timeline(Cluster.FABRIC).reserve(
            second.end_time, 10 * first.total, num_bytes=123, job="b")
        contended = engine.simulate_iteration(cost_model, workers=workers,
                                              link_resource=Cluster.FABRIC, job_name="a",
                                              start_time=second.end_time)
        assert engine.iterations_fast_forwarded == 1
        assert engine.iterations_simulated == 2
        assert contended.total > second.total

    def test_cancel_reflow_restores_cache_hits(self):
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        cost_model = make_cost_model()
        workers = cluster.workers(2, 2)
        first = engine.simulate_iteration(cost_model, workers=workers,
                                          link_resource=Cluster.FABRIC, job_name="a")
        # Job b books a long future window, then gets cancelled (the
        # re-flow path): the link is quiet again and replays resume.
        engine.resource_timeline(Cluster.FABRIC).reserve(
            first.end_time, 10 * first.total, num_bytes=7, job="b")
        engine.resources.cancel_job("b", first.end_time)
        replayed = engine.simulate_iteration(cost_model, workers=workers,
                                             link_resource=Cluster.FABRIC, job_name="a",
                                             start_time=first.end_time)
        assert engine.iterations_fast_forwarded == 1
        assert replayed.total == first.total

    def test_replay_commits_identical_link_occupancy(self):
        """Fast-forward must not skip the byte audit: per-link windows and
        bytes equal the event-by-event reference exactly."""
        def occupancy(memoize):
            cluster = paper_testbed_cluster()
            engine = EventDrivenEngine(cluster, memoize=memoize)
            workers = cluster.workers(2, 2)
            clock = 0.0
            for _ in range(5):
                result = engine.simulate_iteration(make_cost_model(), workers=workers,
                                                   link_resource=Cluster.FABRIC,
                                                   job_name="a", start_time=clock)
                clock = result.end_time
            timeline = engine.resource_timeline(Cluster.FABRIC)
            return [(r.start, r.end, r.num_bytes, r.job, r.kind) for r in timeline.records]

        assert occupancy(True) == occupancy(False)

    def test_trace_bypasses_cache(self):
        engine = EventDrivenEngine()
        cost_model = make_cost_model()
        engine.simulate_iteration(cost_model)
        trace = []
        engine.simulate_iteration(cost_model, trace=trace, start_time=1.0)
        assert engine.iterations_fast_forwarded == 0
        assert engine.iterations_simulated == 2
        assert trace and trace[0].time >= 1.0

    def test_distinct_cost_models_never_alias(self):
        engine = EventDrivenEngine()
        small = engine.simulate_iteration(make_cost_model((1000, 1000)))
        large = engine.simulate_iteration(make_cost_model((9000, 9000)))
        assert engine.iterations_simulated == 2
        assert large.total > small.total
        # Same structure in a *new* object shares the entry (fingerprinted).
        engine.simulate_iteration(make_cost_model((1000, 1000)))
        assert engine.iterations_fast_forwarded == 1

    def test_swapped_module_list_recomputes_fingerprint(self):
        """The documented contract: swap ``layer_modules`` and the digest is
        recomputed — a same-length swap must not serve the old model's
        cached timing."""
        engine = EventDrivenEngine()
        cost_model = make_cost_model((1000, 2000))
        small = engine.simulate_iteration(cost_model)
        cost_model.layer_modules = make_cost_model((5_000_000, 7_000_000)).layer_modules
        large = engine.simulate_iteration(cost_model)
        assert engine.iterations_simulated == 2
        assert large.total > 100 * small.total

    def test_bare_names_and_gpu_devices_never_share_an_entry(self):
        """String workers price communication as zero; the same names as
        GPUDevices must not hit that comm-free cache entry."""
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        devices = cluster.workers(2, 1)
        names = [device.name for device in devices]
        free = engine.simulate_iteration(make_cost_model(), workers=names)
        priced = engine.simulate_iteration(make_cost_model(), workers=devices)
        assert engine.iterations_simulated == 2
        assert free.communication == 0.0
        assert priced.communication > 0.0
        assert priced.total > free.total

    def test_clear_fast_forward_cache(self):
        engine = EventDrivenEngine()
        engine.simulate_iteration(make_cost_model())
        assert engine.perf_counters()["cache_entries"] == 1
        engine.clear_fast_forward_cache()
        assert engine.perf_counters()["cache_entries"] == 0
        engine.simulate_iteration(make_cost_model())
        assert engine.iterations_simulated == 2


# --------------------------------------------------------------------------- #
# Engine-level batched fast-forward: plan (can_fast_forward) + commit (batch)
# --------------------------------------------------------------------------- #
class TestEngineBatchedFastForward:
    def test_can_fast_forward_is_a_pure_precondition_probe(self):
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        cost_model = make_cost_model()
        workers = cluster.workers(2, 2)
        kwargs = dict(workers=workers, link_resource=Cluster.FABRIC)
        assert engine.can_fast_forward(cost_model, **kwargs) is None  # cold cache
        first = engine.simulate_iteration(cost_model, job_name="a", **kwargs)
        entry = engine.can_fast_forward(cost_model, start_time=first.end_time, **kwargs)
        assert entry is not None
        # Pure lookup: no counters moved, nothing was committed.
        assert engine.iterations_fast_forwarded == 0
        assert engine.can_fast_forward(cost_model, start_time=first.end_time,
                                       **kwargs) is entry
        # A foreign transfer makes the crossed link non-quiet -> None.
        engine.resource_timeline(Cluster.FABRIC).reserve(
            first.end_time, 10 * first.total, num_bytes=1, job="b")
        assert engine.can_fast_forward(cost_model, start_time=first.end_time,
                                       **kwargs) is None
        disabled = EventDrivenEngine(cluster, memoize=False)
        disabled.simulate_iteration(cost_model, job_name="a", **kwargs)
        assert disabled.can_fast_forward(cost_model, **kwargs) is None

    def test_batch_matches_per_iteration_replays_exactly(self):
        def run(batched):
            cluster = paper_testbed_cluster()
            engine = EventDrivenEngine(cluster)
            workers = cluster.workers(2, 2)
            kwargs = dict(workers=workers, link_resource=Cluster.FABRIC, job_name="a")
            seed = engine.simulate_iteration(make_cost_model(), **kwargs)
            if batched:
                replays = engine.fast_forward_batch(make_cost_model(), 6,
                                                    start_time=seed.end_time, **kwargs)
            else:
                replays, clock = [], seed.end_time
                for _ in range(6):
                    replays.append(engine.simulate_iteration(make_cost_model(),
                                                             start_time=clock, **kwargs))
                    clock = clock + replays[-1].total
            links = [(r.start, r.end, r.num_bytes, r.job, r.kind)
                     for r in engine.resource_timeline(Cluster.FABRIC).records]
            return [r.as_dict() for r in replays], links, engine.iterations_fast_forwarded

        (batch_results, batch_links, batch_ff) = run(True)
        (loop_results, loop_links, loop_ff) = run(False)
        assert batch_results == loop_results  # totals, per-worker ends, everything
        assert batch_links == loop_links      # byte audit committed identically
        assert batch_ff == loop_ff == 6

    def test_batch_truncates_to_empty_on_a_non_quiet_link(self):
        """The re-quote rule: ``busy_until`` is a monotone high-water mark, so
        any foreign window — even one booked in the future — makes the crossed
        link non-quiet and the batch refuses to replay past it.  The caller
        falls back to live simulation, exactly like per-iteration replay."""
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster)
        workers = cluster.workers(2, 2)
        kwargs = dict(workers=workers, link_resource=Cluster.FABRIC, job_name="a")
        seed = engine.simulate_iteration(make_cost_model(), **kwargs)
        engine.resource_timeline(Cluster.FABRIC).reserve(
            seed.end_time + 2 * seed.total, 5 * seed.total, num_bytes=1, job="b")
        replays = engine.fast_forward_batch(make_cost_model(), 10,
                                            start_time=seed.end_time, **kwargs)
        assert replays == []
        assert engine.fast_forward_batches == 0
        assert engine.iterations_fast_forwarded == 0
        # The planning probe agrees with the commit path.
        assert engine.can_fast_forward(make_cost_model(), workers=workers,
                                       link_resource=Cluster.FABRIC,
                                       start_time=seed.end_time) is None

    def test_single_replay_is_not_counted_as_a_batch(self):
        engine = EventDrivenEngine()
        seed = engine.simulate_iteration(make_cost_model())
        replays = engine.fast_forward_batch(make_cost_model(), 1,
                                            start_time=seed.end_time)
        assert len(replays) == 1
        assert engine.fast_forward_batches == 0
        assert engine.iterations_batched == 0
        assert engine.perf_counters()["mean_batch_size"] == 0.0


# --------------------------------------------------------------------------- #
# Scheduler-level invalidation matrix (memoized == reference throughout)
# --------------------------------------------------------------------------- #
class TestSchedulerInvalidationMatrix:
    def _run(self, configure, memoize, batch=True):
        cluster = paper_testbed_cluster()
        scheduler = ClusterScheduler(cluster,
                                     engine=EventDrivenEngine(cluster, memoize=memoize),
                                     batch_fast_forward=batch)
        configure(scheduler)
        return scheduler.run()

    def _check_transition(self, configure, job_name="a"):
        """The scenario must fast-forward some iterations, re-simulate at the
        transition (timing differs), and stay bit-identical to the reference —
        with batched fast-forward, per-iteration fast-forward, and the live
        event-by-event engine all producing the same result."""
        batched = self._run(configure, memoize=True, batch=True)
        memoized = self._run(configure, memoize=True, batch=False)
        reference = self._run(configure, memoize=False)
        assert result_dict(batched) == result_dict(reference)
        assert result_dict(memoized) == result_dict(reference)
        assert memoized.perf["iterations_fast_forwarded"] > 0
        assert memoized.perf["iterations_simulated"] > 1  # the transition re-simulated
        assert memoized.perf["fast_forward_batches"] == 0  # batching was off
        durations = memoized.jobs[job_name].iteration_seconds
        assert len(set(durations)) > 1, "transition did not change iteration timing"
        return batched

    def test_freeze_schedule(self):
        def configure(scheduler):
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=4, iterations=12,
                                    frozen_prefix=lambda i: min(i // 4, 2), cached_fp=True))
        result = self._check_transition(configure)
        # Steady phases really commit as batches (profile changes bound them).
        assert result.perf["fast_forward_batches"] > 0
        assert result.perf["iterations_batched"] > 0

    def test_elastic_resize(self):
        def configure(scheduler):
            job = SimJob("a", make_cost_model(), num_workers=2, iterations=12)
            scheduler.submit(job)
            single = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                make_cost_model(), workers=paper_testbed_cluster().workers(1, 2)).total
            scheduler.resize_job("a", +2, at_time=4.5 * single)
        self._check_transition(configure)

    def test_checkpointed_migration(self):
        def configure(scheduler):
            job = SimJob("a", make_cost_model(), num_workers=2, iterations=12,
                         checkpoint_every=3)
            scheduler.submit(job)
            single = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                make_cost_model(), workers=paper_testbed_cluster().workers(1, 2)).total
            scheduler.resize_job("a", +2, at_time=4.5 * single)
        result = self._check_transition(configure)
        assert result.jobs["a"].restores == 1  # it really migrated

    def test_second_job_arrival_on_shared_link(self):
        # Comm-heavy jobs, so the two all-reduce streams genuinely overlap
        # (and therefore queue) on the shared fabric.
        heavy = (400_000, 800_000, 600_000)

        def configure(scheduler):
            steady = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                make_cost_model(heavy, batch_size=4),
                workers=paper_testbed_cluster().workers(2, 2)).total
            scheduler.submit(SimJob("a", make_cost_model(heavy, batch_size=4),
                                    num_workers=4, iterations=12))
            scheduler.submit(SimJob("b", make_cost_model(heavy, batch_size=4),
                                    num_workers=4, iterations=4,
                                    arrival_time=3.5 * steady))
        self._check_transition(configure)

    def test_preempt_resume_cancel_reflow(self):
        def configure(scheduler):
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=4, iterations=10,
                                    checkpoint_every=2))
            single = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                make_cost_model(), workers=paper_testbed_cluster().workers(2, 2)).total
            scheduler.preempt_job("a", at_time=3.5 * single)
            scheduler.resume_job("a", at_time=6.0 * single)
        result = self._check_transition(configure)
        assert result.jobs["a"].preemptions == 1

    def test_gpu_failure(self):
        def configure(scheduler):
            scheduler.submit(SimJob("a", make_cost_model(), num_workers=4, iterations=10,
                                    checkpoint_every=2))
            single = EventDrivenEngine(paper_testbed_cluster()).simulate_iteration(
                make_cost_model(), workers=paper_testbed_cluster().workers(2, 2)).total
            scheduler.inject_failure("node0:gpu0", at_time=3.5 * single)
        result = self._check_transition(configure)
        assert result.jobs["a"].failures == 1


# --------------------------------------------------------------------------- #
# Hypothesis property: fast-forward == event-by-event, end to end
# --------------------------------------------------------------------------- #
@given(
    param_counts=st.lists(st.integers(min_value=1000, max_value=50_000),
                          min_size=2, max_size=6),
    num_workers=st.sampled_from([1, 2, 4]),
    iterations=st.integers(min_value=1, max_value=10),
    policy=st.sampled_from(SchedulePolicy.ALL),
    checkpoint_every=st.sampled_from([None, 2]),
    prefix_cap=st.integers(min_value=0, max_value=4),
    fabric_policy=st.sampled_from(["fifo", "fair"]),
)
@settings(max_examples=25, deadline=None)
def test_fast_forward_makespan_equals_event_by_event(param_counts, num_workers, iterations,
                                                     policy, checkpoint_every, prefix_cap,
                                                     fabric_policy):
    """The acceptance property: memoization changes wall-clock, never results.

    Every field of the scheduler result — makespan, per-job records,
    per-resource byte audits, checkpoint/restore bytes — must be exactly
    equal between the memoized and the event-by-event engines, across
    policies, disciplines, freezing schedules and checkpoint cadences.
    """
    def run(memoize, batch=False):
        cluster = Cluster(ClusterSpec(num_machines=3, gpus_per_machine=2,
                                      fabric_policy=fabric_policy))
        scheduler = ClusterScheduler(cluster,
                                     engine=EventDrivenEngine(cluster, memoize=memoize),
                                     batch_fast_forward=batch)
        prefix = (lambda i: min(i // 2, prefix_cap)) if prefix_cap else 0
        scheduler.submit(SimJob("a", make_cost_model(param_counts), num_workers=num_workers,
                                iterations=iterations, policy=policy, frozen_prefix=prefix,
                                cached_fp=bool(prefix_cap), checkpoint_every=checkpoint_every))
        scheduler.submit(SimJob("b", make_cost_model(param_counts[::-1]), num_workers=2,
                                iterations=max(1, iterations // 2)))
        return result_dict(scheduler.run())

    assert run(True, batch=True) == run(False)
    assert run(True, batch=False) == run(False)


# --------------------------------------------------------------------------- #
# Counters surface through scenarios, and trainer-backed jobs stay bit-exact
# --------------------------------------------------------------------------- #
class TestIntegration:
    SCENARIO = {
        "cluster": {"num_machines": 2, "gpus_per_machine": 2},
        "jobs": [
            {"name": "a", "modules": [4000, 8000, 6000], "batch_size": 16,
             "num_workers": 2, "iterations": 8, "checkpoint_every": 4},
        ],
    }

    def test_scenario_report_carries_perf_counters(self):
        report = run_scenario(self.SCENARIO)
        perf = report["perf"]
        assert perf["iterations_fast_forwarded"] > 0
        assert 0.0 < perf["cache_hit_rate"] <= 1.0
        assert perf["events_processed"] > 0

    def test_scenario_memoize_flag_disables_cache_with_identical_results(self):
        plain = run_scenario(self.SCENARIO)
        reference = run_scenario(dict(self.SCENARIO, memoize=False))
        assert reference["perf"]["iterations_fast_forwarded"] == 0
        for key in ("makespan", "jobs", "resources", "utilization"):
            assert plain[key] == reference[key]

    def test_scenario_batch_fast_forward_flag(self):
        """``"batch_fast_forward": false`` falls back to one-event-per-
        iteration replay with bit-identical results; the default batches."""
        batched = run_scenario(self.SCENARIO)
        unbatched = run_scenario(dict(self.SCENARIO, batch_fast_forward=False))
        assert batched["perf"]["fast_forward_batches"] > 0
        assert unbatched["perf"]["fast_forward_batches"] == 0
        assert unbatched["perf"]["iterations_batched"] == 0
        for key in ("makespan", "jobs", "resources", "utilization"):
            assert batched[key] == unbatched[key]

    def _trainer(self):
        full = make_dataset("synthetic_cifar10", num_samples=48, num_classes=4,
                            image_size=8, noise=0.8, seed=0)
        train_ds, _eval_ds = full.split(eval_fraction=0.25)
        train_loader = DataLoader(train_ds, batch_size=8, seed=0)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        return VanillaTrainer(model, ClassificationTask(), train_loader, None, optimizer)

    def test_trainer_job_bit_identical_under_memoization(self):
        """A real trainer inside the scheduler: same makespan, same real
        content-addressed checkpoint bytes, with and without fast-forward."""
        def run(memoize):
            trainer = self._trainer()
            manager = CheckpointManager(MemoryBackend())
            trainer.configure_checkpointing(manager, checkpoint_every=1)
            job = TrainerJob("t", trainer, iterations=8, num_workers=2, checkpoint_every=3)
            cluster = paper_testbed_cluster()
            scheduler = ClusterScheduler(cluster,
                                         engine=EventDrivenEngine(cluster, memoize=memoize))
            scheduler.submit(job)
            return scheduler.run()

        memoized, reference = run(True), run(False)
        assert result_dict(memoized) == result_dict(reference)
        assert memoized.jobs["t"].checkpoint_bytes_written == \
            reference.jobs["t"].checkpoint_bytes_written > 0
        assert memoized.perf["iterations_fast_forwarded"] > 0

"""Tests for repro.nn.functional: conv, pooling, softmax, embedding, upsample."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_stride_and_padding_shapes(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 9, 9)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 4, 5, 5)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (1, 4, 7, 7)

    def test_matches_naive_convolution(self, rng):
        x_np = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        w_np = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x_np), Tensor(w_np), padding=0).data[0, 0]
        naive = np.zeros((3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                naive[i, j] = np.sum(x_np[0, 0, i:i + 3, j:j + 3] * w_np[0, 0])
        assert np.allclose(out, naive, atol=1e-5)

    def test_weight_gradient_numeric(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)).astype(np.float32))
        w_np = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        w = Tensor(w_np, requires_grad=True)
        F.conv2d(x, w, padding=1).sum().backward()
        eps, idx = 1e-3, (1, 0, 2, 2)
        orig = w_np[idx]
        w.data[idx] = orig + eps
        plus = F.conv2d(x, w).sum().item() if False else F.conv2d(x, w, padding=1).sum().item()
        w.data[idx] = orig - eps
        minus = F.conv2d(x, w, padding=1).sum().item()
        w.data[idx] = orig
        assert np.isclose(w.grad[idx], (plus - minus) / (2 * eps), rtol=1e-2, atol=1e-2)

    def test_input_gradient_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, stride=2, padding=1).sum().backward()
        assert x.grad.shape == x.shape
        assert b.grad.shape == (4,)

    def test_grouped_convolution_depthwise(self, rng):
        x = Tensor(rng.standard_normal((2, 6, 8, 8)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((6, 1, 3, 3)).astype(np.float32), requires_grad=True)
        out = F.conv2d(x, w, padding=1, groups=6)
        assert out.shape == (2, 6, 8, 8)
        out.sum().backward()
        assert w.grad.shape == (6, 1, 3, 3)

    def test_group_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 4, 4)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 4, 3, 3)).astype(np.float32))
        with pytest.raises(AssertionError):
            F.conv2d(x, w, padding=1, groups=2)


class TestIm2Col:
    def test_roundtrip_shapes(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols, out_h, out_w = F.im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (2, 27, 36)
        back = F.col2im(cols, x.shape, kernel=3, stride=1, padding=1)
        assert back.shape == x.shape

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(8, 2, 2, 0) == 4


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_max(self):
        x_np = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        x = Tensor(x_np, requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == 4.0
        assert x.grad[0, 0, 3, 3] == 1.0
        assert x.grad[0, 0, 0, 0] == 0.0

    def test_avg_pool(self):
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_adaptive_avg_pool_global(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2))
        out = F.adaptive_avg_pool2d(x, 1)
        assert out.shape == (1, 2, 1, 1)
        assert np.isclose(out.data[0, 0, 0, 0], 1.5)


class TestSoftmaxAndEmbedding:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        probs = F.softmax(x, axis=-1)
        assert np.allclose(probs.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-4)

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        probs = F.softmax(x)
        assert np.allclose(probs.data, [[0.5, 0.5]])

    def test_embedding_lookup_and_grad(self, rng):
        weight = Tensor(rng.standard_normal((10, 4)).astype(np.float32), requires_grad=True)
        idx = np.array([[1, 2], [2, 3]])
        out = F.embedding(idx, weight)
        assert out.shape == (2, 2, 4)
        out.sum().backward()
        assert np.allclose(weight.grad[2], 2.0)
        assert np.allclose(weight.grad[0], 0.0)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestUpsampleDropout:
    def test_upsample_nearest(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2), requires_grad=True)
        out = F.upsample_nearest(x, 2)
        assert out.shape == (1, 1, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2], 0.0)
        out.sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_dropout_eval_mode_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)).astype(np.float32))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_dropout_scales_inverse(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7

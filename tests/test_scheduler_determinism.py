"""Hash-seed determinism regression test for the cluster scheduler (SIM003).

The scheduler's fault-tolerance state (`_failed_gpus`, `_paused`,
`_needs_restore`) used to be plain ``set`` s; any iteration over them made
results depend on ``PYTHONHASHSEED``.  They are insertion-ordered dicts now,
and this test pins the fix: the same failure/preemption-heavy scenario run
in fresh interpreters under three different hash seeds must produce the
byte-identical result, including the event trace.
"""

import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"

#: A scenario leaning on every converted field: GPU failures (with
#: recovery), preemption/resume and checkpoint restores.
_SCRIPT = """
import json
from repro.core.modules import LayerModule
from repro.sim import ClusterScheduler, CostModel, SimJob, paper_testbed_cluster

modules = [LayerModule(name=f"m{i}", paths=[], blocks=[], num_params=40_000, index=i)
           for i in range(4)]
cluster = paper_testbed_cluster()
scheduler = ClusterScheduler(cluster)
for name, arrival, workers in (("a", 0.0, 4), ("b", 1.0, 4), ("c", 2.0, 2)):
    scheduler.submit(SimJob(name=name, cost_model=CostModel(modules, batch_size=32),
                            num_workers=workers, iterations=8, checkpoint_every=2,
                            arrival_time=arrival))
gpus = [gpu.name for gpu in cluster.all_gpus()]
scheduler.inject_failure(gpus[0], at_time=0.5, recover_at=3.0)
scheduler.inject_failure(gpus[5], at_time=1.5)
scheduler.preempt_job("b", at_time=2.0)
scheduler.resume_job("b", at_time=4.0)
result = scheduler.run()
print(json.dumps(result.as_dict(), sort_keys=True))
"""


#: A fault-storm scenario exercising the structured fault model end to end:
#: explicit rack/link/spot events plus a seeded stochastic stream, backoff
#: and proactive checkpoints — every new code path that iterates over
#: topology-derived collections.
_FAULTS_SCRIPT = """
import json
from repro.sim import run_scenario

spec = {
    "cluster": {"num_machines": 4, "gpus_per_machine": 2, "num_tor_switches": 2,
                "nic_gbps": 1.0, "tor_uplink_gbps": 1.0, "core_gbps": 0.5,
                "per_tor_fabric": True},
    "placement": "tor_pack",
    "jobs": [
        {"name": "a", "modules": [400000, 800000, 600000], "batch_size": 4,
         "num_workers": 4, "iterations": 8, "checkpoint_every": 4,
         "storage": "ckpt-store"},
        {"name": "b", "modules": [500000, 500000, 500000], "batch_size": 4,
         "num_workers": 2, "iterations": 8, "arrival_time": 0.3,
         "checkpoint_every": 4, "storage": "ckpt-store"},
    ],
    "faults": {
        "events": [
            {"kind": "fail_rack", "at_time": 1.1, "target": 0, "recover_at": 2.6},
            {"kind": "degrade_link", "at_time": 0.8, "target": "tor1-uplink",
             "gbps": 0.25, "recover_at": 2.0},
            {"kind": "spot_evict", "at_time": 3.0, "target": "node3:gpu1",
             "recover_at": 4.5},
        ],
        "spot": {"gpus": ["node3:gpu1"], "notice_seconds": 0.5},
        "backoff": {"base_seconds": 0.2, "cap_seconds": 2.0},
        "seed": 1234, "horizon_seconds": 6.0, "mttf_seconds": 1.5,
        "mttr_seconds": 2.5, "domains": ["gpu", "machine", "link"],
    },
}
print(json.dumps(run_scenario(spec, include_trace=True), sort_keys=True))
"""


def _run_with_hash_seed(script: str, seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_scheduler_result_is_hash_seed_independent():
    outputs = {seed: _run_with_hash_seed(_SCRIPT, seed) for seed in ("0", "1", "31337")}
    reference = outputs["0"]
    assert "makespan" in reference
    for seed, output in outputs.items():
        assert output == reference, f"PYTHONHASHSEED={seed} changed the result"


def test_fault_storm_scenario_is_hash_seed_independent():
    """The fault model replays bit-identically across fresh interpreters."""
    outputs = {seed: _run_with_hash_seed(_FAULTS_SCRIPT, seed)
               for seed in ("0", "1", "31337")}
    reference = outputs["0"]
    assert "domain_failure" in reference  # the faults actually fired
    assert "proactive_checkpoint" in reference
    for seed, output in outputs.items():
        assert output == reference, f"PYTHONHASHSEED={seed} changed the result"

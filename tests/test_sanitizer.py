"""Mutation tests for SimSan, the runtime invariant sanitizer.

Each test deliberately corrupts simulator state the way a real bug would —
a negative-duration window, dropped bytes, a stale event pushed behind the
clock, an oversubscribed fair-share schedule, a poisoned fast-forward cache
entry — and asserts the sanitizer catches it with the *right* error class
and non-empty event provenance.  The control tests assert the sanitizer is
invisible when nothing is wrong: bit-identical results, env-var activation.
"""

import dataclasses

import pytest

from repro.core.modules import LayerModule
from repro.sim import (
    ByteConservationViolation,
    CausalityViolation,
    ClusterScheduler,
    CostModel,
    EventDrivenEngine,
    FairShareTimeline,
    FastForwardDivergence,
    MonotonicityViolation,
    NegativeDurationViolation,
    RateConservationViolation,
    ResourceTimeline,
    SanitizerError,
    SharedResource,
    SimJob,
    SimSanitizer,
    paper_testbed_cluster,
)
from repro.sim.resources import ResourceOccupancy
from repro.sim.sanitizer import sanitize_from_env


def _cost_model(num_modules=4, num_params=50_000):
    modules = [LayerModule(name=f"m{i}", paths=[], blocks=[],
                           num_params=num_params, index=i)
               for i in range(num_modules)]
    return CostModel(modules, batch_size=32)


def _fifo_timeline(sanitizer=None):
    timeline = ResourceTimeline(SharedResource("link", bandwidth_gbps=10.0))
    timeline.sanitizer = sanitizer
    return timeline


def _fair_timeline(sanitizer=None):
    timeline = FairShareTimeline(
        SharedResource("fabric", bandwidth_gbps=10.0, policy="fair"))
    timeline.sanitizer = sanitizer
    return timeline


class TestTimelineMutations:
    def test_negative_duration_record_is_caught(self):
        """A committed window with end < start is a NegativeDurationViolation."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 2.0, num_bytes=100, job="a")
        timeline._records[0] = dataclasses.replace(
            timeline._records[0], start=5.0, end=3.0)
        with pytest.raises(NegativeDurationViolation) as excinfo:
            sanitizer.verify_timeline(timeline)
        assert excinfo.value.provenance
        assert "link" in str(excinfo.value)

    def test_reserve_rejects_negative_duration_eagerly(self):
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        with pytest.raises(NegativeDurationViolation):
            sanitizer.note_reserve(timeline, 0.0, 0.0, -1.0, -1.0, 0, "a", "transfer")

    def test_dropped_bytes_are_caught(self):
        """Silently deleting a committed window breaks byte conservation."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 1.0, num_bytes=100, job="a")
        timeline.reserve(0.0, 1.0, num_bytes=250, job="b")
        del timeline._records[1]
        with pytest.raises(ByteConservationViolation) as excinfo:
            sanitizer.verify_timeline(timeline)
        assert excinfo.value.provenance
        assert "350" in str(excinfo.value)  # the quoted ledger total

    def test_duplicated_bytes_are_caught(self):
        """Double-committing a window is the mirror-image conservation bug."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 1.0, num_bytes=100, job="a")
        timeline._records.append(timeline._records[0])
        with pytest.raises(ByteConservationViolation):
            sanitizer.verify_timeline(timeline)

    def test_rewound_busy_until_is_caught(self):
        """busy_until falling behind the committed windows is monotonicity."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 4.0, num_bytes=10, job="a")
        timeline._busy_until = 1.0
        with pytest.raises(MonotonicityViolation):
            sanitizer.verify_timeline(timeline)

    def test_window_before_request_time_is_caught(self):
        """A window starting before its own request time breaks causality."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        with pytest.raises(CausalityViolation):
            sanitizer.note_reserve(timeline, 10.0, 5.0, 6.0, 1.0, 0, "a", "transfer")

    def test_legitimate_cancel_passes(self):
        """Cancellation legally shrinks busy_until and debits the ledger."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 1.0, num_bytes=100, job="keep")
        timeline.reserve(0.0, 1.0, num_bytes=200, job="drop")
        assert timeline.cancel("drop", after_time=0.0) == 1
        sanitizer.verify_timeline(timeline)  # must not raise
        assert timeline.total_bytes() == 100


class TestFairShareMutations:
    def test_oversubscribed_rate_is_caught(self):
        """A transfer finishing impossibly early means rates summed past
        capacity somewhere inside its window."""
        sanitizer = SimSanitizer()
        timeline = _fair_timeline(sanitizer)
        # Two equal-weight 10s demands arriving together: each ends at 20s.
        timeline.reserve(0.0, 10.0, num_bytes=100, job="a")
        timeline.reserve(0.0, 10.0, num_bytes=100, job="b")
        timeline._ends[0] = 8.0  # 10 capacity-seconds inside an 8s window
        with pytest.raises(RateConservationViolation) as excinfo:
            sanitizer.verify_timeline(timeline)
        assert excinfo.value.provenance
        assert "fabric" in str(excinfo.value)

    def test_honest_fair_schedule_passes(self):
        sanitizer = SimSanitizer()
        timeline = _fair_timeline(sanitizer)
        timeline.reserve(0.0, 10.0, num_bytes=100, job="a")
        timeline.reserve(5.0, 10.0, num_bytes=100, job="b", weight=2.0)
        sanitizer.verify_timeline(timeline)  # must not raise


class TestSchedulerCausality:
    def test_stale_event_behind_the_clock_is_caught(self):
        """An event dequeued behind the scheduler clock is a causality bug."""
        import heapq

        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster, sanitize=True)
        scheduler = ClusterScheduler(cluster, engine=engine)

        class StaleEventJob(SimJob):
            def begin_iteration(self, iteration, sim_time=0.0):
                if iteration == 1:
                    # A bug pushing an event at t=0 after the clock passed it.
                    heapq.heappush(scheduler._heap, (0.0, 10 ** 9, "arrival", ("ghost",)))

        scheduler.submit(StaleEventJob(name="victim", cost_model=_cost_model(),
                                       num_workers=2, iterations=5))
        with pytest.raises(CausalityViolation) as excinfo:
            scheduler.run()
        assert excinfo.value.provenance
        assert any(entry.get("domain") == "scheduler"
                   for entry in excinfo.value.provenance)


class TestFastForwardSpotChecks:
    def test_poisoned_cache_entry_is_caught(self):
        """Corrupting a memoized iteration trips the divergence spot check."""
        engine = EventDrivenEngine(sanitize=True)
        engine.sanitizer.spot_check_every = 1  # spot-check every replay
        cost_model = _cost_model()
        engine.simulate_iteration(cost_model)
        engine.simulate_iteration(cost_model)  # first replay: honest, passes
        key = next(iter(engine._cache))
        entry = engine._cache[key]
        engine._cache[key] = dataclasses.replace(entry, rel_end=entry.rel_end * 2.0)
        with pytest.raises(FastForwardDivergence) as excinfo:
            engine.simulate_iteration(cost_model)
        assert excinfo.value.provenance
        assert "rel_end" in str(excinfo.value)

    def test_honest_cache_survives_every_spot_check(self):
        engine = EventDrivenEngine(sanitize=True)
        engine.sanitizer.spot_check_every = 1
        cost_model = _cost_model()
        for _ in range(5):
            engine.simulate_iteration(cost_model)
        assert engine.sanitizer.spot_checks_performed >= 4


class TestSanitizerTransparency:
    def test_sanitized_run_is_bit_identical(self):
        """SimSan observes; it must never perturb the simulation."""
        results = []
        for sanitize in (False, True):
            cluster = paper_testbed_cluster()
            engine = EventDrivenEngine(cluster, sanitize=sanitize)
            scheduler = ClusterScheduler(cluster, engine=engine)
            for name, arrival in (("a", 0.0), ("b", 5.0)):
                scheduler.submit(SimJob(name=name, cost_model=_cost_model(),
                                        num_workers=4, iterations=6,
                                        checkpoint_every=2, arrival_time=arrival))
            results.append(scheduler.run().as_dict())
        assert results[0] == results[1]

    def test_sanitized_run_performs_checks(self):
        cluster = paper_testbed_cluster()
        engine = EventDrivenEngine(cluster, sanitize=True)
        scheduler = ClusterScheduler(cluster, engine=engine)
        scheduler.submit(SimJob(name="a", cost_model=_cost_model(),
                                num_workers=2, iterations=4))
        scheduler.run()
        assert engine.sanitizer.checks_performed > 0

    def test_env_var_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        assert sanitize_from_env()
        assert EventDrivenEngine().sanitizer is not None
        monkeypatch.setenv("REPRO_SIMSAN", "0")
        assert not sanitize_from_env()
        assert EventDrivenEngine().sanitizer is None
        monkeypatch.delenv("REPRO_SIMSAN")
        assert not sanitize_from_env()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        assert EventDrivenEngine(sanitize=False).sanitizer is None

    def test_provenance_renders_in_message(self):
        """SanitizerError messages embed the recent-event trace."""
        sanitizer = SimSanitizer()
        timeline = _fifo_timeline(sanitizer)
        timeline.reserve(0.0, 1.0, num_bytes=7, job="a")
        del timeline._records[0]
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.verify_timeline(timeline)
        message = str(excinfo.value)
        assert "reserve" in message and "recent events" in message

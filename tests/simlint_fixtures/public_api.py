"""SIM006 fixture: annotation/docstring coverage of sim-core public API.

# simlint: sim-core
"""


def bad_undocumented(value):
    return value


def bad_unannotated(value) -> int:
    """Documented, but the parameter and nothing else is annotated."""
    return int(value)


class BadWidget:
    """A public class whose public method is bare."""

    def poke(self, times):
        return times


# simlint: disable=SIM006 -- fixture: generated shim kept signature-compatible with upstream
def tolerated_shim(payload):
    return payload


def good_function(value: int) -> int:
    """Clean case: documented and fully annotated."""
    return value + 1


class GoodWidget:
    """Clean case: documented class with annotated methods."""

    def __init__(self, size: int):
        """Store the size."""
        self.size = size

    def poke(self, times: int) -> int:
        """Return the poke count."""
        return times


def _private_helper(x):
    return x

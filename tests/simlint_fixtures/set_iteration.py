"""SIM003 fixture: hash-ordered iteration hazards in the simulator core.

# simlint: sim-core
"""

from typing import Dict, List, Set


def _bad_literal_iteration() -> List[str]:
    """Positive case: iterating a set literal."""
    out = []
    for name in {"a", "b", "c"}:
        out.append(name)
    return out


def _bad_symbol_iteration() -> List[str]:
    """Positive cases: set-typed local iterated and materialised."""
    pending = set(["x", "y"])
    collected = [item for item in pending]
    return collected + list(pending)


class _BadState:
    """Positive case: a set-typed field declaration."""

    waiting: Set[str]

    def __init__(self) -> None:
        """Initialise empty."""
        self.waiting = set()


def _tolerated_iteration(names) -> int:
    """Suppressed case: aggregation is order-insensitive."""
    unique = set(names)
    total = 0
    # simlint: disable=SIM003 -- fixture: summation is commutative, order cannot leak
    for name in unique:
        total += len(name)
    return total


def _good_iteration(pending: Set[str]) -> List[str]:
    """Clean case: sorted() pins the order before iterating."""
    return [name for name in sorted(pending)]


def _good_ordered_field() -> Dict[str, None]:
    """Clean case: the insertion-ordered Dict[key, None] idiom."""
    ordered: Dict[str, None] = {}
    ordered["a"] = None
    return ordered

"""SIM001 fixture: wall-clock reads inside the simulator core.

# simlint: sim-core
"""

import time
import datetime


def _bad_stamp() -> float:
    """Positive case: host wall clock leaks into simulated time."""
    return time.time()


def _bad_today() -> "datetime.date":
    """Positive case: datetime wall clock."""
    return datetime.date.today()


def _profiled_section() -> float:
    """Suppressed case: deliberate host-side profiling measurement."""
    return time.perf_counter()  # simlint: disable=SIM001 -- host profiling fixture, not simulated time


def _good_stamp(now: float) -> float:
    """Clean case: simulated time arrives as a parameter."""
    return now + 1.0

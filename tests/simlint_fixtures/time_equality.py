"""SIM004 fixture: float equality on simulated timestamps.

# simlint: sim-core
"""


def _bad_compare(start_time: float, end_time: float) -> bool:
    """Positive case: exact == between two timestamps."""
    return start_time == end_time


def _bad_not_equal(arrival: float, deadline: float) -> bool:
    """Positive case: != is the same hazard."""
    return arrival != deadline


def _tolerated_compare(cached_start: float, start_time: float) -> bool:
    """Suppressed case: bit-exact replay contract."""
    # simlint: disable=SIM004 -- fixture: memoization requires verbatim equality
    return cached_start == start_time


def _good_compare(start_time: float, end_time: float, eps: float) -> bool:
    """Clean case: tolerance-based comparison."""
    return abs(start_time - end_time) <= eps


def _good_non_time(count: int, limit: int) -> bool:
    """Clean case: equality on non-time values is fine."""
    return count == limit

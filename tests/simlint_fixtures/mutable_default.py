"""SIM005 fixture: mutable default arguments (applies to all files)."""

from typing import List, Optional


def _bad_list_default(item: str, acc=[]) -> List[str]:
    """Positive case: shared list default."""
    acc.append(item)
    return acc


def _bad_dict_default(key: str, table={}) -> dict:
    """Positive case: shared dict default."""
    table[key] = True
    return table


def _bad_kwonly_default(*, cache=set()) -> set:
    """Positive case: keyword-only mutable default."""
    return cache


# simlint: disable=SIM005 -- fixture: deliberately shared module-level registry
def _tolerated_default(item: str, registry={"sentinel": True}) -> dict:
    """Suppressed case: the standalone comment above covers the def line."""
    return registry


def _good_default(item: str, acc: Optional[List[str]] = None) -> List[str]:
    """Clean case: None sentinel, allocate inside."""
    if acc is None:
        acc = []
    acc.append(item)
    return acc

"""SIM002 fixture: unseeded module-global randomness (applies to all files)."""

import random

import numpy as np


def _bad_draw() -> float:
    """Positive case: the process-global random stream."""
    return random.random()


def _bad_numpy_draw():
    """Positive case: numpy's legacy global generator."""
    return np.random.rand(3)


def _tolerated_shuffle(items) -> None:
    """Suppressed case: order is re-sorted immediately afterwards."""
    random.shuffle(items)  # simlint: disable=SIM002 -- fixture: order discarded by the caller
    items.sort()


def _good_draw(seed: int) -> float:
    """Clean case: an explicitly seeded private generator."""
    rng = random.Random(seed)
    return rng.random()


def _good_numpy_draw(seed: int):
    """Clean case: numpy Generator with an explicit seed."""
    return np.random.default_rng(seed).random()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_train_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--workload", "alexnet"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "--workload", "resnet56_cifar10"])
        assert args.systems == ["vanilla", "egeria"]
        assert args.scale == "tiny"


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet56_cifar10" in out and "egeria" in out

    def test_train_vanilla_one_epoch(self, capsys):
        code = main(["train", "--workload", "resnet56_cifar10", "--system", "vanilla", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Final top1" in out

    def test_train_egeria_prints_history(self, capsys):
        code = main(["train", "--workload", "resnet56_cifar10", "--system", "egeria", "--epochs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated time" in out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_train_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--workload", "alexnet"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "--workload", "resnet56_cifar10"])
        assert args.systems == ["vanilla", "egeria"]
        assert args.scale == "tiny"


class TestCkptParser:
    def test_ckpt_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ckpt"])

    def test_ckpt_save_parses(self):
        args = build_parser().parse_args(
            ["ckpt", "save", "--workload", "resnet56_cifar10", "--dir", "/tmp/x", "--every", "2"])
        assert args.command == "ckpt" and args.ckpt_command == "save"
        assert args.every == 2 and args.system == "egeria"

    def test_ckpt_inspect_parses(self):
        args = build_parser().parse_args(["ckpt", "inspect", "--dir", "/tmp/x"])
        assert args.ckpt_command == "inspect" and args.id is None

    def test_ckpt_restore_accepts_every(self):
        args = build_parser().parse_args(
            ["ckpt", "restore", "--workload", "resnet56_cifar10", "--dir", "/tmp/x", "--every", "3"])
        assert args.ckpt_command == "restore" and args.every == 3


class TestCkptCommands:
    def test_save_inspect_restore_roundtrip(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "store")
        code = main(["ckpt", "save", "--workload", "resnet56_cifar10", "--system", "vanilla",
                     "--epochs", "2", "--every", "1", "--dir", ckpt_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 checkpoints" in out

        assert main(["ckpt", "inspect", "--dir", ckpt_dir]) == 0
        out = capsys.readouterr().out
        assert "ckpt-" in out and "written" in out

        code = main(["ckpt", "restore", "--workload", "resnet56_cifar10", "--system", "vanilla",
                     "--epochs", "3", "--dir", ckpt_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed vanilla" in out

    def test_restore_rejects_wrong_system(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "store")
        assert main(["ckpt", "save", "--workload", "resnet56_cifar10", "--system", "vanilla",
                     "--epochs", "1", "--dir", ckpt_dir]) == 0
        capsys.readouterr()
        code = main(["ckpt", "restore", "--workload", "resnet56_cifar10", "--system", "egeria",
                     "--epochs", "2", "--dir", ckpt_dir])
        assert code == 2
        assert "saved by system" in capsys.readouterr().err

    def test_restore_past_target_is_noop(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "store")
        assert main(["ckpt", "save", "--workload", "resnet56_cifar10", "--system", "vanilla",
                     "--epochs", "2", "--dir", ckpt_dir]) == 0
        capsys.readouterr()
        assert main(["ckpt", "restore", "--workload", "resnet56_cifar10", "--system", "vanilla",
                     "--epochs", "2", "--dir", ckpt_dir]) == 0
        assert "nothing to resume" in capsys.readouterr().out


class TestSimCommands:
    SCENARIO = {
        "cluster": {"num_machines": 2, "gpus_per_machine": 2, "storage_gbps": 10.0},
        "jobs": [
            {"name": "a", "modules": [4000, 8000, 6000], "batch_size": 16,
             "num_workers": 2, "iterations": 4, "checkpoint_every": 2},
            {"name": "b", "modules": [4000, 8000, 6000], "batch_size": 16,
             "num_workers": 2, "iterations": 4, "checkpoint_every": 2,
             "async_checkpoint": True},
        ],
        "gpu_speeds": [{"gpu": "node0:gpu0", "factor": 0.8}],
    }

    def _write(self, tmp_path, spec):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_sim_run_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim"])

    def test_sim_run_prints_report(self, tmp_path, capsys):
        assert main(["sim", "run", self._write(tmp_path, self.SCENARIO)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["makespan"] > 0.0
        assert set(report["jobs"]) == {"a", "b"}
        assert report["jobs"]["a"]["iterations_done"] == 4
        assert report["resources"]["ckpt-store"]["total_bytes"] > 0
        assert "trace" not in report

    def test_sim_run_writes_out_file_and_is_deterministic(self, tmp_path, capsys):
        scenario = self._write(tmp_path, self.SCENARIO)
        out1, out2 = str(tmp_path / "r1.json"), str(tmp_path / "r2.json")
        assert main(["sim", "run", scenario, "--out", out1]) == 0
        assert main(["sim", "run", scenario, "--out", out2]) == 0
        capsys.readouterr()
        first, second = (json.loads(open(p).read()) for p in (out1, out2))
        assert first == second

    def test_sim_run_removed_trace_flag_points_at_trace_out(self, tmp_path, capsys):
        scenario = self._write(tmp_path, self.SCENARIO)
        assert main(["sim", "run", scenario, "--trace"]) == 2
        err = capsys.readouterr().err
        assert "--trace was removed" in err
        assert "--trace-out" in err

    def test_sim_run_rejects_bad_scenarios(self, tmp_path, capsys):
        bad_key = dict(self.SCENARIO, warp=1)
        assert main(["sim", "run", self._write(tmp_path, bad_key)]) == 2
        assert "unknown scenario keys" in capsys.readouterr().err

        bad_resource = dict(self.SCENARIO)
        bad_resource["jobs"] = [dict(self.SCENARIO["jobs"][0], storage="nope")]
        assert main(["sim", "run", self._write(tmp_path, bad_resource)]) == 2
        assert "unknown resource" in capsys.readouterr().err

        assert main(["sim", "run", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

        bad_policy = dict(self.SCENARIO)
        bad_policy["resources"] = [{"name": "scratch", "bandwidth_gbps": 1.0,
                                    "policy": "lottery"}]
        assert main(["sim", "run", self._write(tmp_path, bad_policy)]) == 2
        assert "policy" in capsys.readouterr().err

    def test_sim_run_policy_override(self, tmp_path, capsys):
        scenario = self._write(tmp_path, self.SCENARIO)
        assert main(["sim", "run", scenario, "--policy", "fair"]) == 0
        report = json.loads(capsys.readouterr().out)
        resources = report["cluster"]["resources"]
        assert resources["ckpt-store"]["policy"] == "fair"
        assert resources["fabric"]["policy"] == "fair"
        # An explicitly pinned policy wins over the CLI override.
        pinned = dict(self.SCENARIO)
        pinned["cluster"] = dict(pinned["cluster"], storage_policy="fifo")
        assert main(["sim", "run", self._write(tmp_path, pinned),
                     "--policy", "fair"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cluster"]["resources"]["ckpt-store"]["policy"] == "fifo"
        assert report["cluster"]["resources"]["fabric"]["policy"] == "fair"

    def test_sim_run_per_tor_scenario(self, tmp_path, capsys):
        scenario = {
            "cluster": {"num_machines": 4, "gpus_per_machine": 2,
                        "num_tor_switches": 2, "per_tor_fabric": True},
            "placement": "tor_pack",
            "jobs": [
                {"name": "a", "modules": [40000, 80000], "num_workers": 4, "iterations": 2},
                {"name": "b", "modules": [40000, 80000], "num_workers": 4, "iterations": 2},
            ],
        }
        assert main(["sim", "run", self._write(tmp_path, scenario)]) == 0
        report = json.loads(capsys.readouterr().out)
        # Rack-packed jobs queue on their own ToR uplinks, never the core.
        assert report["resources"]["tor0-uplink"]["total_bytes"] > 0
        assert report["resources"]["tor1-uplink"]["total_bytes"] > 0
        assert report["resources"]["core"]["total_bytes"] == 0

    def test_sim_run_trace_and_metrics_out(self, tmp_path, capsys):
        from repro.sim import check_metrics, check_trace

        scenario = self._write(tmp_path, self.SCENARIO)
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.json")
        report_path = str(tmp_path / "report.json")
        assert main(["sim", "run", scenario, "--out", report_path,
                     "--trace-out", trace_path, "--metrics-out", metrics_path]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        trace = json.loads(open(trace_path).read())
        metrics = json.loads(open(metrics_path).read())
        report = json.loads(open(report_path).read())
        assert check_trace(trace) == []
        assert check_metrics(metrics, report) == []
        assert report["metrics"]  # observation implied by the export flags

    def test_sim_profile_prints_ranked_report(self, tmp_path, capsys):
        scenario = self._write(tmp_path, self.SCENARIO)
        out_path = str(tmp_path / "profile.json")
        assert main(["sim", "profile", scenario, "--top", "5",
                     "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "top 5 functions by cumulative" in out
        report = json.loads(open(out_path).read())
        assert report["events_per_second"] > 0
        assert len(report["hot_functions"]) == 5

    def test_sim_profile_rejects_bad_scenarios(self, tmp_path, capsys):
        bad_key = dict(self.SCENARIO, warp=1)
        assert main(["sim", "profile", self._write(tmp_path, bad_key)]) == 2
        assert "unknown scenario keys" in capsys.readouterr().err


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet56_cifar10" in out and "egeria" in out

    def test_train_vanilla_one_epoch(self, capsys):
        code = main(["train", "--workload", "resnet56_cifar10", "--system", "vanilla", "--epochs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Final top1" in out

    def test_train_egeria_prints_history(self, capsys):
        code = main(["train", "--workload", "resnet56_cifar10", "--system", "egeria", "--epochs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated time" in out

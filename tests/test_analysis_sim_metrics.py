"""Tests for the analysis (PWCCA/SVCCA), simulation (cost/cluster/all-reduce) and metrics packages."""

import numpy as np
import pytest

from repro import models
from repro.analysis import (
    ConvergenceAnalyzer,
    freezable_regions,
    pwcca_distance,
    pwcca_similarity,
    svcca_distance,
    svcca_similarity,
    theoretical_saving,
    truncate_to_variance,
)
from repro.core import parse_layer_modules
from repro.metrics import (
    EpochRecord,
    RunHistory,
    f1_spans,
    mean_iou,
    perplexity_from_loss,
    span_f1_single,
    top1_accuracy,
    topk_accuracy,
    tta_speedup,
)
from repro.sim import (
    AllReduceModel,
    CostModel,
    GPUSpec,
    SchedulePolicy,
    TimelineSimulator,
    paper_testbed_cluster,
    single_node_cluster,
)


class TestPWCCA:
    def test_identical_activations_distance_zero(self, rng):
        a = rng.standard_normal((32, 12)).astype(np.float32)
        assert pwcca_distance(a, a.copy()) < 0.05
        assert pwcca_similarity(a, a.copy()) > 0.95

    def test_random_vs_related_ordering(self, rng):
        a = rng.standard_normal((64, 16)).astype(np.float32)
        related = a @ rng.standard_normal((16, 16)).astype(np.float32)  # linear transform: high CCA
        unrelated = rng.standard_normal((64, 16)).astype(np.float32)
        assert pwcca_distance(a, related) < pwcca_distance(a, unrelated) + 0.2

    def test_range_bounds(self, rng):
        a = rng.standard_normal((20, 8)).astype(np.float32)
        b = rng.standard_normal((20, 8)).astype(np.float32)
        assert 0.0 <= pwcca_distance(a, b) <= 1.0

    def test_handles_conv_activations(self, rng):
        a = rng.standard_normal((8, 4, 5, 5)).astype(np.float32)
        assert 0.0 <= pwcca_distance(a, a + 0.01) <= 1.0

    def test_sample_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            pwcca_distance(rng.standard_normal((8, 4)), rng.standard_normal((9, 4)))

    def test_rank_deficient_self_distance_zero(self, rng):
        # Rank-2 activations embedded in 10 dimensions: the SVD reduction
        # keeps fewer directions than the ambient dimensionality.
        basis = rng.standard_normal((20, 2)).astype(np.float64)
        mixing = rng.standard_normal((2, 10)).astype(np.float64)
        x = basis @ mixing
        assert pwcca_distance(x, x.copy()) == pytest.approx(0.0, abs=1e-9)
        assert pwcca_similarity(x, x.copy()) == pytest.approx(1.0, abs=1e-9)

    def test_truncated_weights_are_renormalized(self, rng):
        # y spans fewer directions than x, so the canonical correlations are
        # truncated below x's direction count; the projection weights must be
        # renormalized over the kept directions (summing to 1), otherwise the
        # similarity is deflated by exactly the dropped weight mass.
        x = rng.standard_normal((40, 12)).astype(np.float64)
        y = (x[:, :3] @ rng.standard_normal((3, 12))).astype(np.float64)  # rank-3 view of x
        similarity = pwcca_similarity(x, y)
        assert 0.0 <= similarity <= 1.0
        # y is a deterministic linear function of x's first directions: the
        # kept canonical correlations are ~1, so the renormalized projection
        # weighting must report near-perfect similarity.
        assert similarity > 0.95


class TestSVCCA:
    def test_truncate_to_variance(self, rng):
        x = rng.standard_normal((40, 20)).astype(np.float32)
        reduced = truncate_to_variance(x, variance_fraction=0.9, max_dims=5)
        assert reduced.shape[0] == 40 and reduced.shape[1] <= 5

    def test_similarity_and_distance(self, rng):
        a = rng.standard_normal((32, 10)).astype(np.float32)
        assert svcca_similarity(a, a) > 0.9
        assert svcca_distance(a, a) < 0.1


class TestConvergenceHelpers:
    def test_freezable_regions_detects_plateaus(self):
        scores = [1.0, 0.8, 0.5, 0.31, 0.30, 0.30, 0.29, 0.6, 0.6, 0.6]
        regions = freezable_regions(scores, stability_threshold=0.05, min_length=2)
        assert regions
        assert any(start >= 2 for start, _end in regions)

    def test_freezable_regions_empty_for_steep_curve(self):
        assert freezable_regions([10.0, 8.0, 6.0, 4.0, 2.0], stability_threshold=0.05) == []

    def test_theoretical_saving_bounds(self):
        saving = theoretical_saving([100, 100], [[(0, 4)], []], num_epochs=10)
        assert 0.0 <= saving <= 1.0
        assert saving == pytest.approx(0.25)
        assert theoretical_saving([], [], 10) == 0.0

    def test_convergence_analyzer_records(self, rng):
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        reference = models.resnet8(num_classes=4, width=0.5, seed=0)
        modules = parse_layer_modules(model)
        analyzer = ConvergenceAnalyzer(modules, metric="pwcca")
        from repro import nn
        inputs = (nn.Tensor(rng.standard_normal((8, 3, 8, 8)).astype(np.float32)),)
        scores = analyzer.record(0, model, reference, inputs)
        assert set(scores) == {m.name for m in modules}
        assert analyzer.as_table()[0]["epoch"] == 0.0
        assert 0.0 <= analyzer.estimated_saving() <= 1.0

    def test_unknown_metric_raises(self):
        model = models.resnet8(seed=0)
        analyzer = ConvergenceAnalyzer(parse_layer_modules(model), metric="bogus")
        with pytest.raises(ValueError):
            analyzer._metric_fn()


class TestCostModel:
    def _cost_model(self):
        model = models.resnet8(num_classes=4, seed=0)
        return CostModel(parse_layer_modules(model), batch_size=16)

    def test_freezing_reduces_iteration_time(self):
        cost = self._cost_model()
        baseline = cost.iteration(0, False, include_reference_overhead=False).total
        frozen = cost.iteration(2, False, include_reference_overhead=False).total
        cached = cost.iteration(2, True, include_reference_overhead=False).total
        assert frozen < baseline
        assert cached < frozen

    def test_fp_fraction_around_one_third(self):
        """bp_fp_ratio=2 means the forward pass is ~1/3 of compute (paper: up to 35%)."""
        assert self._cost_model().fp_fraction() == pytest.approx(1.0 / 3.0, abs=0.02)

    def test_reference_overhead_small(self):
        cost = self._cost_model()
        with_ref = cost.iteration(0, False, include_reference_overhead=True).total
        without = cost.iteration(0, False, include_reference_overhead=False).total
        assert (with_ref - without) / without < 0.05

    def test_communication_overlap(self):
        cost = self._cost_model()
        breakdown = cost.iteration(0, False, comm_seconds_per_byte=0.0)
        assert breakdown.communication == 0.0
        heavy = cost.iteration(0, False, comm_seconds_per_byte=1e-6, include_reference_overhead=False)
        assert heavy.total >= breakdown.compute

    def test_potential_backward_saving_monotone(self):
        cost = self._cost_model()
        savings = [cost.potential_backward_saving(k) for k in range(4)]
        assert savings == sorted(savings)

    def test_epoch_time_scales_linearly(self):
        cost = self._cost_model()
        assert cost.epoch_time(10) == pytest.approx(cost.epoch_time(5) * 2)

    def test_breakdown_as_dict(self):
        breakdown = self._cost_model().iteration(1, True)
        d = breakdown.as_dict()
        assert {"forward", "backward", "communication", "total"} <= set(d)


class TestClusterAndAllReduce:
    def test_paper_testbed_shape(self):
        cluster = paper_testbed_cluster()
        info = cluster.describe()
        assert info["machines"] == 5 and info["gpus"] == 10
        assert len(cluster.workers(num_machines=3, gpus_per_machine=2)) == 6

    def test_bottleneck_bandwidth_is_nic(self):
        cluster = paper_testbed_cluster()
        workers = cluster.workers(num_machines=2)
        assert cluster.worker_bottleneck_gbps(workers) == pytest.approx(40.0)

    def test_single_machine_detection(self):
        cluster = single_node_cluster(num_gpus=8)
        workers = cluster.workers(num_machines=1, gpus_per_machine=8)
        assert cluster.is_single_machine(workers)

    def test_allreduce_time_increases_with_volume_and_workers(self):
        cluster = paper_testbed_cluster()
        allreduce = AllReduceModel(cluster)
        two = cluster.workers(num_machines=2)
        five = cluster.workers(num_machines=5)
        assert allreduce.allreduce_seconds(10_000_000, two) < allreduce.allreduce_seconds(20_000_000, two)
        assert allreduce.allreduce_seconds(10_000_000, five) > allreduce.allreduce_seconds(10_000_000, two)
        assert allreduce.allreduce_seconds(0, five) == 0.0
        assert allreduce.allreduce_seconds(100, [five[0]]) == 0.0

    def test_seconds_per_byte(self):
        cluster = paper_testbed_cluster()
        allreduce = AllReduceModel(cluster)
        assert allreduce.seconds_per_byte(cluster.workers(num_machines=2)) > 0
        assert allreduce.seconds_per_byte([cluster.workers()[0]]) == 0.0


class TestTimeline:
    def _simulator(self, num_machines=3):
        model = models.resnet8(num_classes=4, seed=0)
        modules = parse_layer_modules(model)
        cluster = paper_testbed_cluster()
        workers = cluster.workers(num_machines=num_machines)
        return TimelineSimulator(modules, CostModel(modules, batch_size=16), AllReduceModel(cluster), workers)

    def test_egeria_faster_than_vanilla(self):
        sim = self._simulator()
        vanilla = sim.simulate(SchedulePolicy.VANILLA)
        egeria = sim.simulate(SchedulePolicy.EGERIA, frozen_prefix=2, cached_fp=True)
        assert egeria.total < vanilla.total

    def test_bytescheduler_hides_more_communication(self):
        sim = self._simulator()
        vanilla = sim.simulate(SchedulePolicy.VANILLA)
        bytesched = sim.simulate(SchedulePolicy.BYTESCHEDULER)
        assert bytesched.exposed_communication <= vanilla.exposed_communication

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            self._simulator().simulate("magic")

    def test_throughput_sweep(self):
        sweep = self._simulator().throughput_sweep(frozen_prefix=1)
        assert set(sweep) == set(SchedulePolicy.ALL)
        assert all(v > 0 for v in sweep.values())


class TestMetrics:
    def test_top1_and_topk(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert top1_accuracy(logits, np.array([1, 0])) == 1.0
        assert topk_accuracy(logits, np.array([0, 1]), k=2) == 1.0

    def test_mean_iou_perfect_and_disjoint(self):
        pred = np.array([[0, 1], [1, 0]])
        assert mean_iou(pred, pred, 2) == 1.0
        assert mean_iou(pred, 1 - pred, 2) == 0.0

    def test_perplexity(self):
        assert perplexity_from_loss(0.0) == 1.0
        assert perplexity_from_loss(100.0) < np.inf

    def test_span_f1(self):
        assert span_f1_single(2, 4, 2, 4) == 1.0
        assert span_f1_single(0, 1, 4, 5) == 0.0
        assert 0.0 < span_f1_single(2, 5, 3, 5) < 1.0
        assert f1_spans([1], [2], [1], [2]) == 1.0

    def _history(self, metrics, times, higher=True):
        history = RunHistory(name="test", higher_is_better=higher)
        for epoch, (metric, t) in enumerate(zip(metrics, times)):
            history.add(EpochRecord(epoch=epoch, train_loss=1.0, metric=metric,
                                    simulated_time=t, wall_time=t, learning_rate=0.1))
        return history

    def test_time_to_accuracy(self):
        history = self._history([0.2, 0.5, 0.8], [10, 20, 30])
        assert history.time_to_accuracy(0.5) == 20
        assert history.time_to_accuracy(0.9) is None
        assert history.epochs_to_accuracy(0.8) == 2

    def test_time_to_accuracy_lower_is_better(self):
        history = self._history([10.0, 5.0, 2.0], [10, 20, 30], higher=False)
        assert history.time_to_accuracy(5.0) == 20
        assert history.best_metric() == 2.0

    def test_tta_speedup(self):
        baseline = self._history([0.2, 0.5, 0.8], [10, 20, 30])
        faster = self._history([0.2, 0.5, 0.8], [8, 15, 22])
        assert tta_speedup(baseline, faster, target=0.8) == pytest.approx((30 - 22) / 30)
        assert tta_speedup(baseline, self._history([0.1, 0.1, 0.1], [1, 2, 3]), 0.8) is None

    def test_run_history_table(self):
        history = self._history([0.5], [10])
        assert history.as_table()[0]["metric"] == 0.5

"""Tests for the reference model, SPSC queues, activation cache and prefetcher."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import models, nn
from repro.core import ActivationCache, EvaluationChannels, Prefetcher, ReferenceModel, SPSCQueue
from repro.core.hooks import ActivationRecorder
from repro.data import DataLoader, make_dataset


class TestActivationRecorder:
    def test_captures_named_module_output(self, tiny_model, rng):
        recorder = ActivationRecorder(tiny_model, ["layer1.0"])
        tiny_model(nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        activation = recorder.get("layer1.0")
        assert activation is not None and activation.shape[0] == 2
        recorder.remove()

    def test_retarget(self, tiny_model, rng):
        recorder = ActivationRecorder(tiny_model, ["layer1.0"])
        recorder.retarget(["layer2.0"])
        tiny_model(nn.Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))
        assert recorder.get("layer1.0") is None
        assert recorder.get("layer2.0") is not None
        recorder.remove()

    def test_context_manager_removes_hooks(self, tiny_model, rng):
        with ActivationRecorder(tiny_model, ["conv1"]) as recorder:
            tiny_model(nn.Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))
            assert recorder.get("conv1") is not None
        assert not tiny_model.get_submodule("conv1")._forward_hooks


class TestReferenceModel:
    def _factory(self):
        return models.resnet8(num_classes=4, width=0.5, seed=0)

    def test_generate_copies_weights_with_quantization_error(self, tiny_model):
        reference = ReferenceModel(self._factory, precision="int8")
        reference.generate(tiny_model, iteration=5)
        assert reference.model is not None
        original = tiny_model.conv1.weight.data
        quantized = reference.model.conv1.weight.data
        assert np.allclose(original, quantized, atol=0.1)
        assert reference.stats.generations == 1
        assert reference.stats.last_snapshot_iteration == 5

    def test_update_and_staleness(self, tiny_model):
        reference = ReferenceModel(self._factory)
        reference.generate(tiny_model, iteration=0)
        tiny_model.conv1.weight.data += 1.0
        reference.update(tiny_model, iteration=10)
        assert reference.stats.updates == 1
        assert reference.staleness(15) == 5
        assert np.allclose(reference.model.conv1.weight.data, tiny_model.conv1.weight.data, atol=0.2)

    def test_forward_returns_hooked_activation(self, tiny_model, rng):
        reference = ReferenceModel(self._factory)
        reference.monitor(["layer1.0"])
        reference.generate(tiny_model)
        activations = reference.forward(nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert "layer1.0" in activations
        assert reference.stats.forward_passes == 1

    def test_forward_without_generate_raises(self):
        reference = ReferenceModel(self._factory)
        with pytest.raises(RuntimeError):
            reference.forward(nn.Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32)))

    def test_precision_metadata(self):
        assert ReferenceModel(self._factory, precision="int8").cpu_speedup > \
            ReferenceModel(self._factory, precision="float32").cpu_speedup
        assert ReferenceModel(self._factory, precision="int8").memory_ratio < 1.0
        with pytest.raises(ValueError):
            ReferenceModel(self._factory, precision="int2")

    def test_estimated_forward_seconds(self):
        reference = ReferenceModel(self._factory, precision="int8")
        assert reference.estimated_forward_seconds(3.59) == pytest.approx(1.0)


class TestSPSCQueue:
    def test_fifo_order(self):
        queue = SPSCQueue(maxsize=4)
        for i in range(3):
            assert queue.put(i)
        assert [queue.get(), queue.get(), queue.get()] == [0, 1, 2]
        assert queue.get() is None

    def test_drop_when_full(self):
        queue = SPSCQueue(maxsize=2)
        assert queue.put(1) and queue.put(2)
        assert not queue.put(3)
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_peek_and_clear(self):
        queue = SPSCQueue(maxsize=2)
        queue.put("a")
        assert queue.peek() == "a" and len(queue) == 1
        queue.clear()
        assert queue.empty()

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            SPSCQueue(maxsize=0)

    def test_evaluation_channels(self):
        channels = EvaluationChannels()
        channels.training_output_queue.put({"iteration": 1})
        assert channels.pending_evaluations() == 1
        channels.clear()
        assert channels.pending_evaluations() == 0


class TestActivationCache:
    def test_store_and_load_roundtrip(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path), memory_batches=2, batch_size=4)
        activation = rng.standard_normal((8, 4)).astype(np.float32)
        assert cache.store(3, activation)
        loaded = cache.load(3)
        assert np.allclose(loaded, activation)
        assert cache.stats.hits == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ActivationCache(cache_dir=str(tmp_path))
        assert cache.load(99) is None
        assert cache.stats.misses == 1

    def test_load_batch_all_or_nothing(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        acts = rng.standard_normal((4, 6)).astype(np.float32)
        cache.store_batch([0, 1, 2, 3], acts)
        batch = cache.load_batch([0, 1, 2, 3])
        assert batch.shape == (4, 6)
        assert cache.load_batch([0, 1, 99]) is None

    def test_memory_eviction_lru(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path), memory_batches=1, batch_size=2)
        for i in range(5):
            cache.store(i, rng.standard_normal(3).astype(np.float32))
            cache.load(i)
        assert cache.memory_entries <= 2
        # Evicted entries are still served from disk.
        assert cache.load(0) is not None

    def test_invalidate_on_prefix_version_change(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        cache.store(1, rng.standard_normal(3).astype(np.float32))
        cache.set_prefix_version(2)
        assert cache.load(1) is None
        assert cache.stats.invalidations == 1
        assert cache.disk_bytes == 0

    def test_disk_budget_respected(self, tmp_path, rng):
        activation = rng.standard_normal(100).astype(np.float32)
        cache = ActivationCache(cache_dir=str(tmp_path), max_disk_bytes=activation.nbytes)
        assert cache.store(0, activation)
        assert not cache.store(1, activation)

    def test_restore_same_sample_does_not_double_count_disk_bytes(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        activation = rng.standard_normal(50).astype(np.float32)
        assert cache.store(0, activation)
        assert cache.store(0, activation + 1.0)  # overwrite, same version
        assert cache.disk_bytes == activation.nbytes
        assert cache.storage_ratio(input_bytes_per_sample=activation.nbytes) == pytest.approx(1.0)
        # The overwritten content is what loads serve.
        assert np.allclose(cache.load(0), activation + 1.0)

    def test_restore_within_budget_replaces_instead_of_rejecting(self, tmp_path, rng):
        activation = rng.standard_normal(100).astype(np.float32)
        cache = ActivationCache(cache_dir=str(tmp_path), max_disk_bytes=activation.nbytes)
        assert cache.store(0, activation)
        # Re-storing the same sample replaces its bytes: still within budget.
        assert cache.store(0, activation * 2.0)
        assert cache.disk_bytes == activation.nbytes
        # A genuinely larger replacement that would blow the budget is rejected.
        assert not cache.store(0, rng.standard_normal(200).astype(np.float32))

    def test_restore_refreshes_in_memory_copy(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        first = rng.standard_normal(8).astype(np.float32)
        cache.store(0, first)
        cache.load(0)  # pulls the entry into the in-memory table
        updated = first * 3.0
        cache.store(0, updated)
        assert np.allclose(cache.load(0), updated)

    def test_generation_monotonic_and_unconditional(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        g0 = cache.generation
        cache.set_prefix_version(2)
        assert cache.generation == g0 + 1
        cache.set_prefix_version(2)  # unchanged prefix: no new generation
        assert cache.generation == g0 + 1
        g = cache.new_generation()   # unfreeze path: bumps even without a prefix change
        assert g == g0 + 2
        assert cache.generation == g0 + 2

    def test_refreeze_to_same_prefix_never_aliases(self, tmp_path, rng):
        """Freeze -> unfreeze -> refreeze to the same length must miss.

        Reproduces the aliasing hazard: entries written while the prefix
        version is numerically identical to a later ``frozen_prefix_length``
        must not survive the unfreeze in between.
        """
        cache = ActivationCache(cache_dir=str(tmp_path))
        cache.set_prefix_version(1)
        cache.set_prefix_version(2)          # prefix grows to 2
        stale = rng.standard_normal(6).astype(np.float32)
        cache.store(7, stale)
        cache.prefix_version = 0
        cache.new_generation()               # unfreeze: unconditional invalidation
        cache.store(7, stale + 1.0)          # entries written while unfrozen-era
        cache.set_prefix_version(2)          # refreeze straight back to length 2
        assert cache.load(7) is None         # nothing stale served
        assert cache.disk_bytes == 0

    def test_storage_ratio(self, tmp_path, rng):
        cache = ActivationCache(cache_dir=str(tmp_path))
        cache.store(0, rng.standard_normal((8, 8)).astype(np.float32))
        ratio = cache.storage_ratio(input_bytes_per_sample=64)
        assert ratio == pytest.approx((8 * 8 * 4) / 64)

    def test_temporary_dir_cleanup(self, rng):
        cache = ActivationCache()
        path = cache.cache_dir
        cache.store(0, rng.standard_normal(3).astype(np.float32))
        cache.close()
        assert not os.path.isdir(path)

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=30, unique=True))
    @settings(max_examples=15, deadline=None)
    def test_property_every_stored_sample_is_loadable(self, sample_ids):
        rng = np.random.default_rng(0)
        with ActivationCache(memory_batches=2, batch_size=4) as cache:
            for sample_id in sample_ids:
                cache.store(sample_id, rng.standard_normal(5).astype(np.float32))
            for sample_id in sample_ids:
                assert cache.load(sample_id) is not None


class TestPrefetcher:
    def test_prefetch_pulls_future_batches_into_memory(self, tmp_path, rng):
        dataset = make_dataset("synthetic_cifar10", num_samples=32, seed=0)
        loader = DataLoader(dataset, batch_size=8, seed=0)
        loader.set_epoch(0)
        cache = ActivationCache(cache_dir=str(tmp_path), memory_batches=4, batch_size=8)
        for i in range(32):
            cache.store(i, rng.standard_normal(4).astype(np.float32))
        cache._memory.clear()
        prefetcher = Prefetcher(cache, lookahead_batches=2)
        loaded = prefetcher.prefetch(loader.peek_future_indices(num_batches=2))
        assert loaded == 16
        assert cache.stats.prefetches == 16
        # The prefetched samples hit in memory without another disk read.
        future = loader.peek_future_indices(num_batches=1)[0]
        assert all(int(i) in cache._memory for i in future)

    def test_prefetch_skips_missing_entries(self, tmp_path):
        cache = ActivationCache(cache_dir=str(tmp_path))
        prefetcher = Prefetcher(cache, lookahead_batches=1)
        assert prefetcher.prefetch([[1, 2, 3]]) == 0

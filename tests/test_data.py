"""Tests for synthetic datasets, the look-ahead data loader and augmentation."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    StatelessAugmentation,
    SyntheticImageClassification,
    SyntheticQuestionAnswering,
    SyntheticSegmentation,
    SyntheticTranslation,
    make_dataset,
)


class TestDatasets:
    def test_classification_shapes_and_determinism(self):
        ds = SyntheticImageClassification(num_samples=20, num_classes=5, image_size=8, seed=3)
        batch = ds.get_batch(np.arange(4))
        assert batch.inputs.shape == (4, 3, 8, 8)
        assert batch.targets.shape == (4,)
        again = ds.get_batch(np.arange(4))
        assert np.allclose(batch.inputs, again.inputs)

    def test_classification_same_seed_same_data(self):
        a = SyntheticImageClassification(num_samples=10, seed=1).get_batch(np.arange(3))
        b = SyntheticImageClassification(num_samples=10, seed=1).get_batch(np.arange(3))
        assert np.allclose(a.inputs, b.inputs)

    def test_classification_classes_are_separable(self):
        """Same-class samples are closer than different-class samples on average."""
        ds = SyntheticImageClassification(num_samples=60, num_classes=3, image_size=8, noise=0.3, seed=0)
        batch = ds.get_batch(np.arange(60))
        flat = batch.inputs.reshape(60, -1)
        same, diff = [], []
        for i in range(30):
            for j in range(i + 1, 30):
                dist = np.linalg.norm(flat[i] - flat[j])
                (same if batch.targets[i] == batch.targets[j] else diff).append(dist)
        assert np.mean(same) < np.mean(diff)

    def test_segmentation_targets_are_valid_classes(self):
        ds = SyntheticSegmentation(num_samples=6, num_classes=5, image_size=16, seed=0)
        batch = ds.get_batch(np.arange(6))
        assert batch.inputs.shape == (6, 3, 16, 16)
        assert batch.targets.min() >= 0 and batch.targets.max() < 5

    def test_translation_mapping_consistent(self):
        ds = SyntheticTranslation(num_samples=10, vocab_size=16, seq_len=6, seed=0)
        batch = ds.get_batch(np.arange(10))
        expected = (ds.permutation[batch.inputs] + 1) % 16
        expected[expected == 0] = 1
        assert np.array_equal(batch.targets, expected)
        assert "decoder_inputs" in batch.extras

    def test_qa_spans_within_sequence(self):
        ds = SyntheticQuestionAnswering(num_samples=20, seq_len=12, seed=0)
        batch = ds.get_batch(np.arange(20))
        starts, ends = batch.targets[:, 0], batch.targets[:, 1]
        assert (starts <= ends).all()
        assert (ends < 12).all()

    def test_make_dataset_factory_and_overrides(self):
        ds = make_dataset("synthetic_voc", num_samples=4, num_classes=3)
        assert ds.num_classes == 3
        with pytest.raises(KeyError):
            make_dataset("not_a_dataset")

    def test_split_shares_distribution(self):
        full = make_dataset("synthetic_cifar10", num_samples=50, num_classes=4, seed=0)
        train, evaluation = full.split(eval_fraction=0.2)
        assert len(train) == 40 and len(evaluation) == 10
        # Eval indices map onto the tail of the parent dataset.
        batch = evaluation.get_batch(np.array([0]))
        parent_batch = full.get_batch(np.array([40]))
        assert np.allclose(batch.inputs, parent_batch.inputs)
        # Metadata is delegated to the parent.
        assert train.num_classes == 4

    def test_split_invalid_fraction(self):
        full = make_dataset("synthetic_cifar10", num_samples=10)
        with pytest.raises(ValueError):
            full.split(eval_fraction=1.5)

    def test_input_nbytes(self):
        ds = SyntheticImageClassification(num_samples=2, image_size=8)
        assert ds.input_nbytes_per_sample() == 3 * 8 * 8 * 4


class TestDataLoader:
    def test_batches_cover_dataset_without_replacement(self):
        ds = make_dataset("synthetic_cifar10", num_samples=32, seed=0)
        loader = DataLoader(ds, batch_size=8, seed=0)
        seen = []
        for batch in loader:
            seen.extend(batch.indices.tolist())
        assert sorted(seen) == list(range(32))

    def test_drop_last(self):
        ds = make_dataset("synthetic_cifar10", num_samples=30, seed=0)
        assert len(DataLoader(ds, batch_size=8, drop_last=True)) == 3
        assert len(DataLoader(ds, batch_size=8, drop_last=False)) == 4

    def test_epoch_order_deterministic_per_epoch(self):
        ds = make_dataset("synthetic_cifar10", num_samples=32, seed=0)
        loader_a = DataLoader(ds, batch_size=8, seed=5)
        loader_b = DataLoader(ds, batch_size=8, seed=5)
        loader_a.set_epoch(3)
        loader_b.set_epoch(3)
        assert np.array_equal(loader_a.next_batch().indices, loader_b.next_batch().indices)

    def test_different_epochs_shuffle_differently(self):
        ds = make_dataset("synthetic_cifar10", num_samples=64, seed=0)
        loader = DataLoader(ds, batch_size=64, seed=0)
        loader.set_epoch(0)
        first = loader.next_batch().indices.copy()
        loader.set_epoch(1)
        second = loader.next_batch().indices.copy()
        assert not np.array_equal(first, second)

    def test_peek_future_matches_actual_iteration(self):
        ds = make_dataset("synthetic_cifar10", num_samples=48, seed=0)
        loader = DataLoader(ds, batch_size=8, seed=0)
        loader.set_epoch(0)
        future = loader.peek_future_indices(num_batches=3)
        actual = [loader.next_batch().indices for _ in range(3)]
        for f, a in zip(future, actual):
            assert np.array_equal(f, a)

    def test_peek_crosses_epoch_boundary(self):
        ds = make_dataset("synthetic_cifar10", num_samples=16, seed=0)
        loader = DataLoader(ds, batch_size=8, seed=0)
        loader.set_epoch(0)
        loader.next_batch()
        future = loader.peek_future_indices(num_batches=3)
        assert len(future) == 3  # 1 left in epoch 0 + 2 from epoch 1

    def test_invalid_batch_size(self):
        ds = make_dataset("synthetic_cifar10", num_samples=8)
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)

    def test_no_shuffle_keeps_order(self):
        ds = make_dataset("synthetic_cifar10", num_samples=16, seed=0)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        loader.set_epoch(0)
        assert np.array_equal(loader.next_batch().indices, [0, 1, 2, 3])


class TestAugmentation:
    def test_stateless_replay_identical(self, rng):
        aug = StatelessAugmentation(base_seed=42)
        image = rng.standard_normal((3, 8, 8)).astype(np.float32)
        first = aug.apply_sample(image, sample_index=7)
        second = aug.apply_sample(image, sample_index=7)
        assert np.allclose(first, second)

    def test_different_samples_get_different_augmentation(self, rng):
        aug = StatelessAugmentation(base_seed=42, jitter=False)
        image = rng.standard_normal((3, 8, 8)).astype(np.float32)
        outputs = [aug.apply_sample(image, sample_index=i) for i in range(10)]
        assert any(not np.allclose(outputs[0], other) for other in outputs[1:])

    def test_apply_batch_shape(self, rng):
        aug = StatelessAugmentation(base_seed=0)
        images = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        out = aug.apply_batch(images, indices=[0, 1, 2, 3])
        assert out.shape == images.shape

    def test_translate_preserves_shape_and_zero_fills(self, rng):
        from repro.data.augmentation import random_translate
        image = np.ones((1, 6, 6), dtype=np.float32)
        out = random_translate(image, np.random.default_rng(1), max_shift=2)
        assert out.shape == image.shape
        assert out.sum() <= image.sum()

    def test_flip_probability_zero_is_identity(self, rng):
        from repro.data.augmentation import random_horizontal_flip
        image = rng.standard_normal((3, 4, 4)).astype(np.float32)
        out = random_horizontal_flip(image, np.random.default_rng(0), probability=0.0)
        assert np.allclose(out, image)

"""Tests for the baseline systems: static/gradient/FreezeOut freezing, Skip-Conv, ByteScheduler."""

import numpy as np
import pytest

from repro import models, optim
from repro.baselines import (
    ByteSchedulerModel,
    DistributedThroughputComparison,
    FreezeOutTrainer,
    GradientFreezeTrainer,
    SkipConvTrainer,
    StaticFreezeTrainer,
    freezeout_schedule,
    module_gradient_norm,
)
from repro.core import ClassificationTask, EgeriaConfig, parse_layer_modules
from repro.core.plasticity import direct_difference_loss
from repro.data import DataLoader, make_dataset
from repro.sim import SchedulePolicy, paper_testbed_cluster


def cv_pieces(num_samples=64, noise=1.0):
    full = make_dataset("synthetic_cifar10", num_samples=num_samples, num_classes=4, image_size=8,
                        noise=noise, seed=0)
    train_ds, eval_ds = full.split(eval_fraction=0.25)
    return (DataLoader(train_ds, batch_size=8, seed=0),
            DataLoader(eval_ds, batch_size=8, shuffle=False))


def cv_model_and_optim():
    model = models.resnet8(num_classes=4, width=0.5, seed=0)
    return model, optim.SGD(model.parameters(), lr=0.1, momentum=0.9)


class TestStaticFreeze:
    def test_freezes_at_scheduled_epoch(self):
        train_loader, eval_loader = cv_pieces()
        model, optimizer = cv_model_and_optim()
        trainer = StaticFreezeTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer,
                                      freeze_schedule={2: 2})
        history = trainer.fit(num_epochs=4)
        assert trainer.frozen_prefix() == 2
        assert trainer.freeze_events == [{"epoch": 2, "frozen_prefix": 2}]
        assert history.frozen_fractions()[1] == 0.0
        assert history.frozen_fractions()[3] > 0.0

    def test_never_freezes_everything(self):
        train_loader, eval_loader = cv_pieces()
        model, optimizer = cv_model_and_optim()
        trainer = StaticFreezeTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer,
                                      freeze_schedule={0: 100})
        trainer.fit(num_epochs=1)
        assert trainer.frozen_prefix() < len(trainer.layer_modules)


class TestGradientFreeze:
    def test_module_gradient_norm(self, tiny_model, tiny_layer_modules, tiny_dataset):
        task = ClassificationTask()
        batch = tiny_dataset.get_batch(np.arange(8))
        loss = task.loss(task.forward(tiny_model, batch), batch)
        loss.backward()
        norms = [module_gradient_norm(m) for m in tiny_layer_modules]
        assert all(n >= 0 for n in norms)
        assert any(n > 0 for n in norms)

    def test_aggressive_threshold_freezes_front_modules(self):
        train_loader, eval_loader = cv_pieces()
        model, optimizer = cv_model_and_optim()
        trainer = GradientFreezeTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer,
                                        eval_interval_iters=2, norm_share_threshold=0.9, patience=1)
        trainer.fit(num_epochs=3)
        assert trainer.frozen_prefix() >= 1
        assert trainer.freeze_events
        indices = [e["module_index"] for e in trainer.freeze_events]
        assert indices == sorted(indices)

    def test_conservative_threshold_never_freezes(self):
        train_loader, eval_loader = cv_pieces()
        model, optimizer = cv_model_and_optim()
        trainer = GradientFreezeTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer,
                                        eval_interval_iters=2, norm_share_threshold=1e-9, patience=2)
        trainer.fit(num_epochs=2)
        assert trainer.frozen_prefix() == 0


class TestFreezeOut:
    def test_schedule_monotone_and_bounded(self):
        times = freezeout_schedule(6, t0=0.5, cubed=True)
        assert times == sorted(times)
        assert times[0] == pytest.approx(0.125)
        assert times[-1] == 1.0
        assert freezeout_schedule(1) == [1.0]

    def test_progressive_freezing_over_epochs(self):
        train_loader, eval_loader = cv_pieces()
        model, optimizer = cv_model_and_optim()
        trainer = FreezeOutTrainer(model, ClassificationTask(), train_loader, eval_loader, optimizer,
                                   total_epochs=8, t0=0.3, cubed=True)
        trainer.fit(num_epochs=8)
        assert trainer.frozen_prefix() >= 1
        assert trainer.frozen_prefix() < len(trainer.layer_modules)


class TestSkipConv:
    def test_uses_direct_difference_metric(self, tmp_path):
        train_loader, eval_loader = cv_pieces()
        model_factory = lambda: models.resnet8(num_classes=4, width=0.5, seed=0)
        model = model_factory()
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        config = EgeriaConfig(eval_interval_iters=2, freeze_window=2, cache_dir=str(tmp_path))
        trainer = SkipConvTrainer(model, model_factory, ClassificationTask(), train_loader, eval_loader,
                                  optimizer, config=config)
        assert trainer.engine.metric is direct_difference_loss
        history = trainer.fit(num_epochs=3)
        assert len(history.records) == 3
        trainer.close()


class TestByteScheduler:
    def test_overhead_makes_it_slightly_slower_than_optimal(self):
        model = models.resnet8(num_classes=4, seed=0)
        layer_modules = parse_layer_modules(model)
        comparison = DistributedThroughputComparison(layer_modules, batch_size=16,
                                                     cluster=paper_testbed_cluster())
        throughputs = comparison.throughputs(num_machines=3)
        assert set(throughputs) == set(SchedulePolicy.ALL)
        assert throughputs[SchedulePolicy.EGERIA] > 0

    def test_scaling_sweep_rows(self):
        model = models.resnet8(num_classes=4, seed=0)
        comparison = DistributedThroughputComparison(parse_layer_modules(model), batch_size=16)
        rows = comparison.scaling_sweep([2, 4], frozen_prefix=1)
        assert [row["num_machines"] for row in rows] == [2.0, 4.0]
        for row in rows:
            assert row[SchedulePolicy.EGERIA] >= row[SchedulePolicy.VANILLA]

    def test_bytescheduler_model_overhead(self):
        model = models.resnet8(num_classes=4, seed=0)
        layer_modules = parse_layer_modules(model)
        from repro.sim import AllReduceModel, CostModel, TimelineSimulator
        cluster = paper_testbed_cluster()
        workers = cluster.workers(num_machines=2)
        simulator = TimelineSimulator(layer_modules, CostModel(layer_modules, batch_size=16),
                                      AllReduceModel(cluster), workers)
        zero_overhead = ByteSchedulerModel(scheduling_overhead_fraction=0.0)
        with_overhead = ByteSchedulerModel(scheduling_overhead_fraction=0.05)
        assert with_overhead.iteration_time(simulator) > zero_overhead.iteration_time(simulator)

"""Tier-1 documentation gate: links resolve and the README quickstart runs.

Mirrors CI's docs job (``tools/check_docs.py``): documentation that points
at files that moved, or a quickstart snippet the API drifted away from,
fails the suite instead of silently rotting.
"""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_markdown_links_resolve():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    errors = check_docs.check_links(REPO_ROOT)
    assert not errors, "broken markdown links:\n" + "\n".join(errors)


def test_readme_quickstart_snippets_execute():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    failures = check_docs.run_readme_snippets(REPO_ROOT)
    assert not failures, "failing README snippets:\n" + \
        "\n".join(message for _line, message in failures)


def test_check_docs_cli_passes():
    """The exact command CI's docs job runs."""
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py"),
         "--root", str(REPO_ROOT)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK:" in result.stdout

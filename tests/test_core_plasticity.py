"""Tests for the plasticity metric (SP loss) and its time-series tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PlasticityTracker,
    direct_difference_loss,
    moving_average,
    similarity_matrix,
    sp_loss,
    windowed_slope,
)


class TestSPLoss:
    def test_identical_activations_zero_loss(self, rng):
        a = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        assert sp_loss(a, a.copy()) == pytest.approx(0.0, abs=1e-10)

    def test_loss_grows_with_perturbation(self, rng):
        a = rng.standard_normal((8, 16)).astype(np.float32)
        small = sp_loss(a, a + 0.01 * rng.standard_normal(a.shape).astype(np.float32))
        large = sp_loss(a, a + 1.0 * rng.standard_normal(a.shape).astype(np.float32))
        assert small < large

    def test_nonnegative_and_symmetric_shapes(self, rng):
        a = rng.standard_normal((4, 10)).astype(np.float32)
        b = rng.standard_normal((4, 10)).astype(np.float32)
        assert sp_loss(a, b) >= 0.0

    def test_different_feature_shapes_allowed(self, rng):
        """Only the batch dimension must match (similarity matrices are b x b)."""
        a = rng.standard_normal((4, 10)).astype(np.float32)
        b = rng.standard_normal((4, 3, 2, 2)).astype(np.float32)
        assert sp_loss(a, b) >= 0.0

    def test_batch_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            sp_loss(rng.standard_normal((4, 8)), rng.standard_normal((5, 8)))

    def test_scale_invariance_of_similarity_structure(self, rng):
        """SP loss compares normalised similarity patterns, so uniform scaling
        of one activation changes the loss far less than reshuffling it."""
        a = rng.standard_normal((8, 32)).astype(np.float32)
        scaled = sp_loss(a, 2.0 * a)
        shuffled = sp_loss(a, a[np.random.default_rng(0).permutation(8)])
        assert scaled < shuffled

    def test_accepts_tensor_inputs(self, rng):
        from repro.nn import Tensor
        a = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        assert sp_loss(a, a) == pytest.approx(0.0, abs=1e-10)

    def test_similarity_matrix_shape_and_normalisation(self, rng):
        a = rng.standard_normal((6, 20)).astype(np.float32)
        g = similarity_matrix(a)
        assert g.shape == (6, 6)
        assert np.allclose(np.linalg.norm(g, axis=1), 1.0, atol=1e-5)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_property_sp_loss_nonnegative(self, batch, features):
        rng = np.random.default_rng(batch * 31 + features)
        a = rng.standard_normal((batch, features)).astype(np.float32)
        b = rng.standard_normal((batch, features)).astype(np.float32)
        assert sp_loss(a, b) >= 0.0
        assert sp_loss(a, a) <= sp_loss(a, b) + 1e-6


class TestDirectDifference:
    def test_zero_for_identical(self, rng):
        a = rng.standard_normal((4, 8)).astype(np.float32)
        assert direct_difference_loss(a, a) == 0.0

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            direct_difference_loss(rng.standard_normal((4, 8)), rng.standard_normal((4, 9)))

    def test_sensitive_to_uniform_scaling_unlike_sp(self, rng):
        """The Skip-Conv/FitNets metric penalises scale changes that SP loss mostly ignores."""
        a = rng.standard_normal((8, 16)).astype(np.float32)
        assert direct_difference_loss(a, 2 * a) > sp_loss(a, 2 * a)


class TestTimeSeriesHelpers:
    def test_moving_average_window(self):
        assert moving_average([1, 2, 3, 4], window=2) == 3.5
        assert moving_average([1, 2, 3, 4], window=10) == 2.5
        with pytest.raises(ValueError):
            moving_average([], 3)

    def test_windowed_slope_linear_series(self):
        series = [10.0 - i for i in range(8)]
        assert windowed_slope(series, window=5) == pytest.approx(-1.0)

    def test_windowed_slope_flat_and_short(self):
        assert windowed_slope([3.0, 3.0, 3.0], window=3) == pytest.approx(0.0)
        assert windowed_slope([1.0], window=3) == 0.0


class TestPlasticityTracker:
    def test_smoothing_follows_equation2(self):
        tracker = PlasticityTracker(window=3)
        values = [4.0, 2.0, 6.0, 8.0]
        for i, v in enumerate(values):
            tracker.record(v, iteration=i)
        # Last smoothed value = mean of last 3 raw readings.
        assert tracker.smoothed_history[-1] == pytest.approx(np.mean(values[-3:]))

    def test_tolerance_calibrated_from_initial_readings(self):
        tracker = PlasticityTracker(window=5, tolerance_coefficient=0.2, initial_readings=3)
        for i, v in enumerate([10.0, 8.0, 6.0, 5.0]):
            tracker.record(v, iteration=i)
        assert tracker.tolerance is not None
        assert tracker.tolerance > 0

    def test_stationary_on_converged_series(self):
        tracker = PlasticityTracker(window=4, tolerance_coefficient=0.2)
        series = [10.0, 6.0, 3.0] + [1.0] * 10
        for i, v in enumerate(series):
            tracker.record(v, iteration=i)
        assert tracker.is_stationary()

    def test_not_stationary_on_decreasing_series(self):
        tracker = PlasticityTracker(window=4, tolerance_coefficient=0.05, relative_slope_floor=0.01)
        for i, v in enumerate([100.0, 80.0, 60.0, 40.0, 20.0, 10.0]):
            tracker.record(v, iteration=i)
        assert not tracker.is_stationary()

    def test_relative_floor_covers_preconverged_layers(self):
        """A layer that is already flat-but-noisy counts as stationary."""
        rng = np.random.default_rng(0)
        tracker = PlasticityTracker(window=4, tolerance_coefficient=0.2, relative_slope_floor=0.2)
        for i in range(12):
            tracker.record(1e-8 * (1.0 + 0.05 * rng.standard_normal()), iteration=i)
        assert tracker.is_stationary()

    def test_rejects_non_finite(self):
        tracker = PlasticityTracker()
        with pytest.raises(ValueError):
            tracker.record(float("nan"), iteration=0)

    def test_reset_window_and_history(self):
        tracker = PlasticityTracker(window=6)
        for i in range(5):
            tracker.record(float(i), iteration=i)
        tracker.reset_window(3)
        assert tracker.window == 3
        tracker.reset_history()
        assert len(tracker) == 0
        assert tracker.tolerance is not None  # kept by default
        with pytest.raises(ValueError):
            tracker.reset_window(0)

    def test_latest_none_when_empty(self):
        assert PlasticityTracker().latest() is None

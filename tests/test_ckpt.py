"""Tests for the freezing-aware checkpoint & fault-tolerance subsystem."""

import json
import os

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointManager,
    DirectoryBackend,
    MemoryBackend,
    join_state,
    split_state,
    tensor_digest,
)
from repro.core.modules import parse_layer_modules
from repro.experiments import build_trainer, build_workload
from repro.models import resnet8
from repro.optim import SGD, Adam, AdamW, StepLR
from repro.sim import ClusterScheduler, CostModel, SimJob, paper_testbed_cluster


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
class TestSerialization:
    def test_digest_depends_on_content_shape_dtype(self):
        a = np.arange(6, dtype=np.float32)
        assert tensor_digest(a) == tensor_digest(a.copy())
        assert tensor_digest(a) != tensor_digest(a.reshape(2, 3))
        assert tensor_digest(a) != tensor_digest(a.astype(np.float64))
        assert tensor_digest(a) != tensor_digest(a + 1)

    def test_split_join_roundtrip(self):
        state = {
            "model": {"w": np.ones((2, 3), dtype=np.float32), "b": np.zeros(3, dtype=np.float32)},
            "nested": {"list": [1, 2.5, "x", None, np.arange(4)]},
            "scalar": np.float64(3.25),
        }
        tree, tensors = split_state(state)
        # The tree is JSON-serializable and the scalar became a Python float.
        json.dumps(tree)
        assert tree["scalar"] == 3.25
        restored = join_state(tree, lambda digest: tensors[digest])
        assert np.array_equal(restored["model"]["w"], state["model"]["w"])
        assert np.array_equal(restored["nested"]["list"][4], np.arange(4))

    def test_identical_tensors_share_one_object(self):
        shared = np.full((4, 4), 7.0, dtype=np.float32)
        _tree, tensors = split_state({"a": shared, "b": shared.copy()})
        assert len(tensors) == 1

    def test_unsupported_leaf_raises(self):
        with pytest.raises(TypeError):
            split_state({"bad": object()})


# --------------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------------- #
@pytest.fixture(params=["memory", "directory"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DirectoryBackend(str(tmp_path / "store"))


class TestBackends:
    def test_object_dedup_and_roundtrip(self, backend):
        array = np.random.default_rng(0).standard_normal((5, 5)).astype(np.float32)
        digest = tensor_digest(array)
        assert not backend.has_object(digest)
        assert backend.write_object(digest, array) == array.nbytes
        assert backend.has_object(digest)
        # Re-writing the same digest is free (content-addressed dedup).
        assert backend.write_object(digest, array) == 0
        assert np.array_equal(backend.read_object(digest), array)

    def test_manifest_roundtrip_and_order(self, backend):
        backend.write_manifest("ckpt-0000000002", {"step": 2})
        backend.write_manifest("ckpt-0000000001", {"step": 1})
        assert backend.list_checkpoints() == ["ckpt-0000000001", "ckpt-0000000002"]
        assert backend.read_manifest("ckpt-0000000002")["step"] == 2

    def test_missing_keys_raise(self, backend):
        with pytest.raises(KeyError):
            backend.read_object("deadbeef")
        with pytest.raises(KeyError):
            backend.read_manifest("ckpt-nope")


class TestDirectoryBackendAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path / "store"))
        backend.write_object("abc", np.arange(10, dtype=np.float32))
        backend.write_manifest("ckpt-0000000001", {"step": 1})
        leftovers = [name for root, _dirs, files in os.walk(str(tmp_path))
                     for name in files if name.startswith(".tmp_")]
        assert leftovers == []

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        manager = CheckpointManager(DirectoryBackend(root))
        manager.save({"w": np.ones(3, dtype=np.float32), "step_count": 5}, step=1)
        reopened = CheckpointManager(DirectoryBackend(root))
        state = reopened.restore()
        assert state["step_count"] == 5
        assert np.array_equal(state["w"], np.ones(3, dtype=np.float32))


# --------------------------------------------------------------------------- #
# Manager
# --------------------------------------------------------------------------- #
class TestCheckpointManager:
    def test_incremental_bytes_only_cover_changed_tensors(self):
        manager = CheckpointManager(MemoryBackend())
        frozen = np.ones((100,), dtype=np.float32)
        active = np.zeros((50,), dtype=np.float32)
        first = manager.save({"frozen": frozen, "active": active}, step=1)
        assert first.bytes_written == frozen.nbytes + active.nbytes
        # Only the active tensor changed: the frozen one deduplicates.
        second = manager.save({"frozen": frozen, "active": active + 1}, step=2)
        assert second.bytes_written == active.nbytes
        assert second.payload_bytes == first.payload_bytes
        assert second.num_new_tensors == 1

    def test_restore_latest_and_named(self):
        manager = CheckpointManager(MemoryBackend())
        manager.save({"x": np.array([1.0], dtype=np.float32)}, step=1)
        info = manager.save({"x": np.array([2.0], dtype=np.float32)}, step=2)
        assert manager.latest() == info.checkpoint_id
        assert manager.restore()["x"][0] == 2.0
        assert manager.restore(manager.list_checkpoints()[0])["x"][0] == 1.0

    def test_inspect_carries_meta_and_sections(self):
        manager = CheckpointManager(MemoryBackend())
        manager.save({"model": {"w": np.ones(4, dtype=np.float32)}, "iteration": 3},
                     step=3, meta={"frozen_prefix": 2})
        row = manager.inspect()
        assert row["meta"]["frozen_prefix"] == 2
        assert row["bytes_written_by_section"]["model"] == 16
        assert manager.history() == [row]

    def test_restore_empty_raises(self):
        with pytest.raises(KeyError):
            CheckpointManager(MemoryBackend()).restore()


# --------------------------------------------------------------------------- #
# Optimizer / scheduler state round-trips
# --------------------------------------------------------------------------- #
def _train_steps(model, optimizer, steps=3, seed=0):
    rng = np.random.default_rng(seed)
    from repro.nn import Tensor

    for _ in range(steps):
        x = Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
        out = model(x)
        out.sum().backward()
        optimizer.step()
        optimizer.zero_grad()


@pytest.mark.parametrize("make_optimizer", [
    lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4),
    lambda params: Adam(params, lr=1e-3),
    lambda params: AdamW(params, lr=1e-3, weight_decay=0.01),
])
def test_optimizer_state_roundtrip_preserves_updates(make_optimizer):
    model_a = resnet8(num_classes=4, width=0.5, seed=0)
    opt_a = make_optimizer(model_a.parameters())
    _train_steps(model_a, opt_a, steps=3)

    # Clone into a fresh model/optimizer pair via the state dicts.
    model_b = resnet8(num_classes=4, width=0.5, seed=1)
    model_b.load_state_dict(model_a.state_dict())
    opt_b = make_optimizer(model_b.parameters())
    opt_b.load_state_dict(opt_a.state_dict())
    assert opt_b.step_count == opt_a.step_count

    # The next updates must coincide exactly (same moments, same velocity).
    _train_steps(model_a, opt_a, steps=2, seed=7)
    _train_steps(model_b, opt_b, steps=2, seed=7)
    for (key, value_a), value_b in zip(model_a.state_dict().items(), model_b.state_dict().values()):
        assert np.array_equal(value_a, value_b), key


def test_lr_scheduler_state_roundtrip():
    model = resnet8(num_classes=4, width=0.5, seed=0)
    optimizer = SGD(model.parameters(), lr=0.4)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
    for epoch in range(5):
        scheduler.step(epoch)
    state = scheduler.state_dict()

    optimizer2 = SGD(model.parameters(), lr=0.4)
    scheduler2 = StepLR(optimizer2, step_size=2, gamma=0.1)
    scheduler2.load_state_dict(state)
    assert scheduler2.last_epoch == scheduler.last_epoch
    assert optimizer2.lr == optimizer.lr


# --------------------------------------------------------------------------- #
# Trainer checkpoint -> restore -> train bit-exactness
# --------------------------------------------------------------------------- #
def _history_rows(history):
    return [(r.epoch, r.train_loss, r.metric, r.simulated_time, r.learning_rate,
             r.frozen_fraction, r.cached_fp) for r in history.records]


@pytest.mark.parametrize("system,total_epochs,resume_epoch", [
    ("vanilla", 6, 3),
    ("egeria", 8, 4),
])
def test_trainer_resume_is_bit_exact(system, total_epochs, resume_epoch):
    """Restoring mid-run reproduces the uninterrupted run's exact trajectory.

    The Egeria variant checkpoints *before* the first freeze fires, so the
    restored run must also reproduce the same freezing decisions afterwards.
    """
    workload = build_workload("resnet56_cifar10", scale="tiny", seed=0)

    uninterrupted = build_trainer(system, workload)
    full_history = uninterrupted.fit(total_epochs)
    full_timeline = (uninterrupted.freezing_timeline()
                     if hasattr(uninterrupted, "freezing_timeline") else [])
    if hasattr(uninterrupted, "close"):
        uninterrupted.close()

    manager = CheckpointManager(MemoryBackend())
    first_leg = build_trainer(system, workload)
    first_leg.configure_checkpointing(manager, checkpoint_every=resume_epoch)
    first_leg.fit(resume_epoch)
    if hasattr(first_leg, "close"):
        first_leg.close()
    assert manager.latest() is not None

    resumed = build_trainer(system, workload)
    resumed.configure_checkpointing(manager)
    resumed.restore()
    resumed_history = resumed.fit(total_epochs)
    resumed_timeline = (resumed.freezing_timeline()
                        if hasattr(resumed, "freezing_timeline") else [])
    if hasattr(resumed, "close"):
        resumed.close()

    assert _history_rows(resumed_history) == _history_rows(full_history)
    assert resumed_timeline == full_timeline


def test_egeria_resume_after_freeze_keeps_frozen_state():
    """Checkpointing *after* modules froze restores the frozen prefix, the
    BatchNorm inference mode and the monitored-module cursor."""
    workload = build_workload("resnet56_cifar10", scale="tiny", seed=0)
    manager = CheckpointManager(MemoryBackend())
    trainer = build_trainer("egeria", workload)
    trainer.configure_checkpointing(manager, checkpoint_every=6)
    trainer.fit(6)
    frozen_before = trainer.engine.num_frozen()
    frontmost_before = trainer.engine.frontmost_active
    trainer.close()
    assert frozen_before > 0, "scenario needs at least one frozen module by epoch 6"

    resumed = build_trainer("egeria", workload)
    resumed.configure_checkpointing(manager)
    resumed.restore()
    assert resumed.engine.num_frozen() == frozen_before
    assert resumed.engine.frontmost_active == frontmost_before
    assert resumed.frozen_prefix() == frozen_before
    # Frozen modules' BatchNorm layers run in inference mode (cache validity).
    from repro.nn.layers import BatchNorm2d

    for layer_module in resumed.engine.frozen_modules():
        for block in layer_module.blocks:
            for submodule in block.modules():
                if isinstance(submodule, BatchNorm2d):
                    assert not submodule.training
    resumed.close()


def test_dropout_rng_streams_are_checkpointed():
    """Per-layer Dropout generators resume mid-stream, not from their seed."""
    from repro import nn
    from repro.core.trainer import _capture_module_rng_states, _restore_module_rng_states

    class Net(nn.Module):
        def __init__(self):
            super().__init__()
            self.drop_a = nn.Dropout(p=0.5, seed=1)
            self.drop_b = nn.Dropout(p=0.5, seed=2)

        def forward(self, x):
            return self.drop_b(self.drop_a(x))

    model = Net()
    x = np.ones((4, 8), dtype=np.float32)
    # Advance both streams past their seed position.
    model.drop_a._rng.random(17)
    model.drop_b._rng.random(3)
    states = _capture_module_rng_states(model)
    assert set(states) == {"drop_a", "drop_b"}
    expected_a = model.drop_a._rng.random(5).tolist()
    expected_b = model.drop_b._rng.random(5).tolist()

    # A fresh model restarts from the seeds; restoring must resume mid-stream.
    twin = Net()
    assert twin.drop_a._rng.random(5).tolist() != expected_a
    twin = Net()
    _restore_module_rng_states(twin, states)
    assert twin.drop_a._rng.random(5).tolist() == expected_a
    assert twin.drop_b._rng.random(5).tolist() == expected_b
    del x


def test_trainer_state_dict_includes_module_rng():
    workload = build_workload("bert_squad", scale="tiny", seed=0)
    trainer = build_trainer("vanilla", workload)
    state = trainer.state_dict()
    # BERT's encoder layers carry Dropout modules with per-layer generators.
    assert state["module_rng"], "expected per-module RNG streams in the snapshot"


def test_checkpoint_bytes_shrink_as_prefix_advances():
    """Model+optimizer checkpoint bytes fall monotonically with the prefix."""
    workload = build_workload("resnet56_cifar10", scale="tiny", seed=0)
    manager = CheckpointManager(MemoryBackend())
    trainer = build_trainer("egeria", workload)
    trainer.configure_checkpointing(manager, checkpoint_every=1)
    trainer.fit(workload.num_epochs)
    trainer.close()

    best_by_prefix = {}
    for info in manager.history():
        sections = info["bytes_written_by_section"]
        core = sections.get("model", 0) + sections.get("optimizer", 0)
        prefix = info["meta"]["frozen_prefix"]
        best_by_prefix[prefix] = min(best_by_prefix.get(prefix, core), core)
    prefixes = sorted(best_by_prefix)
    assert len(prefixes) >= 2, "scenario needs the prefix to advance"
    for smaller, larger in zip(prefixes, prefixes[1:]):
        assert best_by_prefix[larger] < best_by_prefix[smaller]


# --------------------------------------------------------------------------- #
# Scheduler fault tolerance
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def sim_cost_model():
    workload = build_workload("resnet50_imagenet", scale="tiny", seed=0)
    modules = parse_layer_modules(workload.make_model())
    return CostModel(modules, batch_size=workload.batch_size)


class TestSchedulerValidation:
    def test_unknown_gpu_rejected_at_call_time(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster())
        with pytest.raises(KeyError):
            scheduler.set_gpu_speed("node9:gpu9", 0.5)
        with pytest.raises(KeyError):
            scheduler.inject_failure("node9:gpu9", at_time=1.0)

    def test_unknown_job_rejected_at_call_time(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster())
        with pytest.raises(KeyError):
            scheduler.resize_job("ghost", -1, at_time=1.0)
        with pytest.raises(KeyError):
            scheduler.preempt_job("ghost", at_time=1.0)
        with pytest.raises(KeyError):
            scheduler.resume_job("ghost", at_time=1.0)

    def test_bad_checkpoint_interval_rejected(self, sim_cost_model):
        with pytest.raises(ValueError):
            SimJob("bad", sim_cost_model, checkpoint_every=0)


class TestFailureInjection:
    def _nominal_iteration(self, scheduler, sim_cost_model, machines=2, gpus=2):
        cluster = scheduler.cluster
        return scheduler.engine.simulate_iteration(
            sim_cost_model, workers=cluster.workers(machines, gpus)).total

    def _run(self, sim_cost_model, checkpoint_every, iterations=20):
        scheduler = ClusterScheduler(paper_testbed_cluster(), placement="fifo", seed=0)
        scheduler.submit(SimJob("job", sim_cost_model, num_workers=4, iterations=iterations,
                                checkpoint_every=checkpoint_every))
        nominal = self._nominal_iteration(scheduler, sim_cost_model)
        scheduler.inject_failure("node0:gpu0", at_time=nominal * iterations * 0.7)
        return scheduler.run()

    def test_resume_from_checkpoint_beats_scratch(self, sim_cost_model):
        with_ckpt = self._run(sim_cost_model, checkpoint_every=4)
        scratch = self._run(sim_cost_model, checkpoint_every=None)
        assert with_ckpt.jobs["job"].iterations_done == 20
        assert scratch.jobs["job"].iterations_done == 20
        assert with_ckpt.jobs["job"].checkpoints_taken > 0
        assert with_ckpt.jobs["job"].restores == 1
        assert with_ckpt.jobs["job"].restore_seconds > 0.0
        assert scratch.jobs["job"].restores == 0
        assert with_ckpt.makespan < scratch.makespan

    def test_failure_is_deterministic(self, sim_cost_model):
        first = self._run(sim_cost_model, checkpoint_every=4)
        second = self._run(sim_cost_model, checkpoint_every=4)
        assert first.as_dict() == second.as_dict()

    def test_failed_gpu_not_reallocated_until_recovery(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster(), placement="fifo", seed=0)
        scheduler.submit(SimJob("job", sim_cost_model, num_workers=4, iterations=10,
                                checkpoint_every=3))
        nominal = self._nominal_iteration(scheduler, sim_cost_model)
        scheduler.inject_failure("node0:gpu0", at_time=nominal * 5,
                                 recover_at=nominal * 8)
        result = scheduler.run()
        record = result.jobs["job"]
        assert record.failures == 1
        assert record.iterations_done == 10
        assert "node0:gpu0" not in record.worker_names or record.finish_time >= nominal * 8

    def test_recover_before_fail_rejected(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster())
        with pytest.raises(ValueError):
            scheduler.inject_failure("node0:gpu0", at_time=2.0, recover_at=1.0)

    def test_failure_after_resize_requeues_at_resized_width(self, sim_cost_model):
        """A job shrunk by an elastic resize must not regrow on re-placement,
        and the from-scratch restart must reset its sample credit exactly."""
        batch = sim_cost_model.batch_size
        iterations = 20
        scheduler = ClusterScheduler(paper_testbed_cluster(), placement="fifo", seed=0)
        scheduler.submit(SimJob("job", sim_cost_model, num_workers=4, iterations=iterations))
        nominal = self._nominal_iteration(scheduler, sim_cost_model)
        scheduler.resize_job("job", -3, at_time=nominal * 2.5)      # 4 -> 1 worker
        single = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(1, 1)).total
        scheduler.inject_failure("node0:gpu0", at_time=nominal * 2.5 + single * 8.2)
        record = scheduler.run().jobs["job"]
        assert record.failures == 1
        assert record.iterations_done == iterations
        # Re-placed at the resized width (1 worker), not the submitted 4.
        assert len(record.worker_names) == 1
        # Without checkpoints the restart is from scratch: every final honored
        # iteration ran at width 1, so the credit is exactly batch * 1 * N —
        # no phantom samples left over from the pre-failure width-4 epoch.
        assert record.samples_processed == batch * 1 * iterations


class TestPreemption:
    def test_preempt_resume_completes_and_excludes_paused_interval(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster(), seed=0)
        scheduler.submit(SimJob("p", sim_cost_model, num_workers=2, iterations=10,
                                checkpoint_every=3))
        nominal = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(1, 2)).total
        scheduler.preempt_job("p", at_time=nominal * 4.5)
        scheduler.resume_job("p", at_time=nominal * 9)
        record = scheduler.run().jobs["p"]
        assert record.iterations_done == 10
        assert record.preemptions == 1
        assert record.restores == 1
        # Throughput counts only placed intervals, not the paused gap.
        span = record.finish_time - record.start_time
        assert record.placed_seconds < span
        assert record.throughput() == pytest.approx(record.samples_processed / record.placed_seconds)

    def test_rollback_restores_exact_sample_watermark(self, sim_cost_model):
        """Rolling back to a checkpoint restores the samples_processed
        watermark; re-running the lost iterations re-credits them once."""
        batch = sim_cost_model.batch_size
        scheduler = ClusterScheduler(paper_testbed_cluster(), seed=0)
        scheduler.submit(SimJob("p", sim_cost_model, num_workers=2, iterations=9,
                                checkpoint_every=3))
        nominal = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(1, 2)).total
        scheduler.preempt_job("p", at_time=nominal * 5.2)
        scheduler.resume_job("p", at_time=nominal * 6)
        record = scheduler.run().jobs["p"]
        assert record.iterations_done == 9
        assert record.samples_processed == batch * 2 * 9

    def test_rollback_to_last_checkpoint(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster(), seed=0)
        scheduler.submit(SimJob("p", sim_cost_model, num_workers=2, iterations=9,
                                checkpoint_every=3))
        nominal = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(1, 2)).total
        # Preempt between checkpoints (after ~iteration 5, checkpoints at 3/6/9)
        scheduler.preempt_job("p", at_time=nominal * 5.2)
        scheduler.resume_job("p", at_time=nominal * 6)
        record = scheduler.run().jobs["p"]
        assert record.iterations_done == 9
        # The rollback re-ran iterations 4-5: more than 9 iteration completions.
        assert len(record.iteration_seconds) > 9


class TestMigration:
    def test_resize_charges_checkpoint_and_restore(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster(), seed=0)
        scheduler.submit(SimJob("m", sim_cost_model, num_workers=4, iterations=10,
                                checkpoint_every=100))  # periodic ckpt never fires
        nominal = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(2, 2)).total
        scheduler.resize_job("m", -2, at_time=nominal * 4.5)
        record = scheduler.run().jobs["m"]
        assert record.iterations_done == 10
        # Migration wrote a synchronized checkpoint and restored on 2 workers.
        assert record.checkpoints_taken == 1
        assert record.restores == 1
        assert record.checkpoint_seconds > 0.0 and record.restore_seconds > 0.0

    def test_uncheckpointed_resize_stays_free(self, sim_cost_model):
        scheduler = ClusterScheduler(paper_testbed_cluster(), seed=0)
        scheduler.submit(SimJob("m", sim_cost_model, num_workers=4, iterations=10))
        nominal = scheduler.engine.simulate_iteration(
            sim_cost_model, workers=scheduler.cluster.workers(2, 2)).total
        scheduler.resize_job("m", -2, at_time=nominal * 4.5)
        record = scheduler.run().jobs["m"]
        assert record.checkpoints_taken == 0 and record.restores == 0

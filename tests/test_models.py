"""Tests for the seven evaluation models and the workload registry."""

import numpy as np
import pytest

from repro import models, nn
from repro.core import parse_layer_modules


class TestCifarResNet:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            models.CifarResNet(depth=10)

    def test_resnet56_structure(self):
        model = models.resnet56()
        # 3 stages x 9 basic blocks + conv1 + fc in the module sequence.
        assert len(model.module_sequence) == 3 * 9 + 2
        assert model.module_sequence[0] == "conv1"
        assert model.module_sequence[-1] == "fc"

    def test_resnet8_forward_and_backward(self, rng):
        model = models.resnet8(num_classes=4, seed=0)
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        logits = model(x)
        assert logits.shape == (2, 4)
        nn.cross_entropy(logits, np.array([0, 1])).backward()
        assert model.conv1.weight.grad is not None

    def test_deep_stage_dominates_parameters(self):
        """Figure 11: stage 3 holds ~75% of ResNet-56's parameters."""
        model = models.resnet56()
        stage_params = []
        for stage in ("layer1", "layer2", "layer3"):
            stage_params.append(sum(p.size for p in model.get_submodule(stage).parameters()))
        total = sum(stage_params)
        assert stage_params[2] / total > 0.6
        assert stage_params[0] / total < 0.1

    def test_width_scales_parameters(self):
        small = models.resnet8(width=0.5)
        large = models.resnet8(width=1.0)
        assert large.num_parameters() > small.num_parameters()

    def test_features_shape(self, rng):
        model = models.resnet8(seed=0)
        feats = model.features(nn.Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32)))
        assert feats.shape == (1, 64, 4, 4)

    def test_module_sequence_paths_resolve(self):
        model = models.resnet20()
        for path in model.module_sequence:
            assert model.get_submodule(path) is not None


class TestImageNetResNet:
    def test_resnet50_lite_stage_counts(self):
        model = models.resnet50_lite()
        assert [len(model.get_submodule(f"layer{i}")._modules) for i in range(1, 5)] == [3, 4, 6, 3]

    def test_forward_shape(self, rng):
        model = models.resnet18_lite(num_classes=7, base_width=4, seed=0)
        out = model(nn.Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 7)

    def test_module_sequence_counts_blocks(self):
        model = models.resnet50_lite()
        # conv1 + 16 bottleneck blocks + fc
        assert len(model.module_sequence) == 1 + 16 + 1


class TestMobileNetV2:
    def test_17_building_blocks(self):
        model = models.mobilenet_v2_lite()
        assert model.num_building_blocks == 17

    def test_forward(self, rng):
        model = models.mobilenet_v2_lite(num_classes=10, seed=0)
        out = model(nn.Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 10)


class TestDeepLab:
    def test_output_is_dense_prediction(self, rng):
        model = models.deeplabv3_lite(num_classes=5)
        out = model(nn.Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32)))
        assert out.shape == (2, 16, 16, 5)

    def test_backbone_plus_head_structure(self):
        model = models.DeepLabV3Lite(num_classes=4, backbone_depth=8)
        assert model.module_sequence[-1] == "classifier"
        assert model.module_sequence[-2] == "head"
        assert any(path.startswith("backbone.layer3") for path in model.module_sequence)


class TestTransformer:
    def test_base_and_tiny_layer_counts(self):
        base = models.transformer_base_lite()
        tiny = models.transformer_tiny()
        assert base.num_encoder_layers == 6 and base.num_decoder_layers == 6
        assert tiny.num_encoder_layers == 2 and tiny.num_decoder_layers == 2
        assert len(base.module_sequence) == 1 + 12 + 1

    def test_forward_logits_shape(self):
        model = models.transformer_tiny(vocab_size=32, seed=0)
        src = np.random.default_rng(0).integers(1, 32, size=(3, 6))
        out = model(src, src)
        assert out.shape == (3, 6, 32)

    def test_causal_mask_lower_triangular(self):
        mask = models.transformer.causal_mask(4)
        assert mask[0, 1] == False  # noqa: E712 - numpy bool comparison
        assert mask[3, 0] == True  # noqa: E712

    def test_encoder_output_used_by_decoder(self):
        model = models.transformer_tiny(vocab_size=16, seed=0)
        src = np.ones((1, 4), dtype=np.int64)
        memory = model.encode(src)
        assert memory.shape == (1, 4, model.d_model)
        decoded = model.decode(src, memory)
        assert decoded.shape == (1, 4, model.d_model)


class TestBert:
    def test_bert_lite_forward(self):
        model = models.bert_lite(num_layers=2, vocab_size=32, d_model=16, num_heads=2, d_ff=32)
        tokens = np.random.default_rng(0).integers(0, 32, size=(2, 6))
        out = model(tokens)
        assert out.shape == (2, 6, 16)

    def test_qa_head_outputs_spans(self):
        model = models.bert_qa_lite(num_layers=2, vocab_size=32, d_model=16, num_heads=2, d_ff=32)
        tokens = np.random.default_rng(0).integers(0, 32, size=(3, 6))
        start, end = model(tokens)
        assert start.shape == (3, 6) and end.shape == (3, 6)

    def test_pretraining_changes_weights(self):
        model = models.BertLite(num_layers=2, vocab_size=32, d_model=16, num_heads=2, d_ff=32, seed=0)
        before = model.token_embed.weight.data.copy()
        models.pretrain_bert_lite(model, num_steps=5, batch_size=4, seq_len=8, seed=0)
        assert not np.allclose(before, model.token_embed.weight.data)

    def test_module_sequence_has_12_layers_by_default(self):
        model = models.bert_qa_lite()
        encoder_layers = [p for p in model.module_sequence if p.startswith("encoder.layers.")]
        assert len(encoder_layers) == 12


class TestRegistry:
    def test_seven_workloads_registered(self):
        assert len(models.WORKLOADS) == 7

    def test_get_workload_and_unknown(self):
        spec = models.get_workload("resnet56_cifar10")
        assert spec.paper_layer_modules == 54
        with pytest.raises(KeyError):
            models.get_workload("unknown_model")

    def test_list_by_task(self):
        cv = models.list_workloads(task="image_classification")
        assert len(cv) == 3

    def test_paper_speedups_within_reported_range(self):
        for spec in models.list_workloads():
            assert 0.19 <= spec.paper_tta_speedup <= 0.43

    def test_factories_produce_parseable_models(self):
        for name in ("resnet56_cifar10", "transformer_tiny_wmt16"):
            spec = models.get_workload(name)
            model = spec.model_factory()
            modules = parse_layer_modules(model)
            assert len(modules) >= 2

"""Tests for the discrete-event simulation engine and the multi-job scheduler."""

import numpy as np
import pytest

from repro import models, optim
from repro.core import ClassificationTask, parse_layer_modules
from repro.baselines import VanillaTrainer
from repro.data import DataLoader, make_dataset
from repro.experiments import build_workload
from repro.sim import (
    AllReduceModel,
    ClusterScheduler,
    CostModel,
    EventDrivenEngine,
    EventQueue,
    SchedulePolicy,
    SimJob,
    paper_testbed_cluster,
)


@pytest.fixture
def cost_model():
    model = models.resnet8(num_classes=4, width=0.5, seed=0)
    return CostModel(parse_layer_modules(model), batch_size=16)


@pytest.fixture
def cluster():
    return paper_testbed_cluster()


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(2.0, "b")
        queue.push(1.0, "a")
        queue.push(3.0, "c")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_deterministic_tie_break_by_insertion(self):
        queue = EventQueue()
        for kind in ("first", "second", "third"):
            queue.push(1.0, kind)
        assert [queue.pop().kind for _ in range(3)] == ["first", "second", "third"]


class TestEngineClosedFormValidation:
    #: The Figure 9 single-job configurations (acceptance criterion: the
    #: event engine and the closed-form CostModel agree within 5% on these).
    FIG9_WORKLOADS = ("resnet50_imagenet", "mobilenet_v2_cifar10",
                      "transformer_base_wmt16", "bert_squad")

    @pytest.mark.parametrize("workload_name", FIG9_WORKLOADS)
    def test_within_5pct_on_fig9_configs(self, workload_name):
        workload = build_workload(workload_name, scale="tiny", seed=0)
        modules = parse_layer_modules(workload.make_model())
        cm = CostModel(modules, batch_size=workload.batch_size)
        total = sum(m.num_params for m in modules)
        prefix, running = 0, 0
        for module in modules:
            if running + module.num_params > total * 0.4:
                break
            running += module.num_params
            prefix += 1
        engine = EventDrivenEngine()
        assert engine.closed_form_deviation(cm, 0, False, include_reference_overhead=False) <= 0.05
        assert engine.closed_form_deviation(cm, prefix, False) <= 0.05
        assert engine.closed_form_deviation(cm, prefix, True) <= 0.05

    def test_exact_match_without_communication(self, cost_model):
        engine = EventDrivenEngine()
        for prefix in (0, 2):
            for cached in (False, True):
                closed = cost_model.iteration(prefix, cached).total
                event = engine.simulate_iteration(cost_model, frozen_prefix=prefix, cached_fp=cached,
                                                  include_reference_overhead=True).total
                assert event == pytest.approx(closed, rel=1e-12)

    def test_linear_comm_coefficient_within_5pct(self, cost_model, cluster):
        workers = cluster.workers(num_machines=3, gpus_per_machine=2)
        spb = AllReduceModel(cluster).seconds_per_byte(workers)
        engine = EventDrivenEngine()
        deviation = engine.closed_form_deviation(cost_model, 0, False,
                                                 include_reference_overhead=False,
                                                 comm_seconds_per_byte=spb)
        assert deviation <= 0.05


class TestEngineEvents:
    def test_result_decomposition(self, cost_model):
        result = EventDrivenEngine().simulate_iteration(cost_model, include_reference_overhead=True)
        assert result.forward > 0 and result.backward > 0
        assert result.reference_overhead > 0
        assert result.communication == 0.0
        assert result.total == pytest.approx(
            result.forward + result.backward + result.reference_overhead)

    def test_trace_records_compute_and_comm_events(self, cost_model, cluster):
        workers = cluster.workers(num_machines=2, gpus_per_machine=2)
        trace = []
        EventDrivenEngine(cluster).simulate_iteration(cost_model, workers=workers, trace=trace)
        kinds = {event.kind for event in trace}
        assert {"segment_done", "bucket_ready", "comm_done"} <= kinds
        times = [event.time for event in trace]
        assert times == sorted(times)

    def test_frozen_prefix_shrinks_comm_volume(self, cost_model, cluster):
        workers = cluster.workers(num_machines=2, gpus_per_machine=2)
        engine = EventDrivenEngine(cluster)
        full = engine.simulate_iteration(cost_model, workers=workers)
        frozen = engine.simulate_iteration(cost_model, workers=workers, frozen_prefix=2)
        assert frozen.communication < full.communication
        assert frozen.total < full.total

    def test_straggler_slows_iteration_and_gates_allreduce(self, cost_model, cluster):
        workers = cluster.workers(num_machines=2, gpus_per_machine=2)
        engine = EventDrivenEngine(cluster)
        nominal = engine.simulate_iteration(cost_model, workers=workers)
        engine.set_gpu_speed(workers[0].name, 0.5)
        slowed = engine.simulate_iteration(cost_model, workers=workers)
        # The slow GPU's compute roughly doubles and every gradient bucket
        # waits for it, so the whole iteration stretches accordingly.
        assert slowed.total > nominal.total * 1.5
        assert slowed.per_worker_compute_end[workers[0].name] == max(
            slowed.per_worker_compute_end.values())

    def test_heterogeneous_speedup_helps(self, cost_model, cluster):
        workers = cluster.workers(num_machines=1, gpus_per_machine=2)
        engine = EventDrivenEngine(cluster)
        nominal = engine.simulate_iteration(cost_model, workers=workers)
        for worker in workers:
            engine.set_gpu_speed(worker.name, 2.0)
        faster = engine.simulate_iteration(cost_model, workers=workers)
        assert faster.total < nominal.total

    def test_invalid_policy_and_speed_rejected(self, cost_model):
        engine = EventDrivenEngine()
        with pytest.raises(ValueError):
            engine.simulate_iteration(cost_model, policy="warp")
        with pytest.raises(ValueError):
            engine.set_gpu_speed("gpu0", 0.0)

    def test_bytescheduler_steady_state_not_slower(self, cost_model, cluster):
        workers = cluster.workers(num_machines=5, gpus_per_machine=2)
        engine = EventDrivenEngine(cluster)
        vanilla = engine.steady_iteration_seconds(cost_model, workers, policy=SchedulePolicy.VANILLA)
        bytesched = engine.steady_iteration_seconds(cost_model, workers,
                                                    policy=SchedulePolicy.BYTESCHEDULER)
        assert bytesched <= vanilla + 1e-15

    def test_simulate_run_iterations_chain(self, cost_model):
        engine = EventDrivenEngine()
        results = engine.simulate_run(cost_model, iterations=3)
        assert len(results) == 3
        for earlier, later in zip(results, results[1:]):
            assert later.start_time == pytest.approx(earlier.end_time)

    def test_determinism(self, cost_model, cluster):
        workers = cluster.workers(num_machines=3, gpus_per_machine=2)
        runs = []
        for _ in range(2):
            engine = EventDrivenEngine(paper_testbed_cluster())
            engine.set_gpu_speed(workers[1].name, 0.7)
            results = engine.simulate_run(cost_model, iterations=4, workers=workers,
                                          policy=SchedulePolicy.EGERIA, frozen_prefix=1)
            runs.append([r.as_dict() for r in results])
        assert runs[0] == runs[1]


class TestClusterScheduler:
    def _job(self, cost_model, name, **kwargs):
        defaults = dict(num_workers=2, iterations=4)
        defaults.update(kwargs)
        return SimJob(name, cost_model, **defaults)

    def test_fifo_queueing_delay(self, cost_model, cluster):
        scheduler = ClusterScheduler(cluster, placement="fifo")
        scheduler.submit(self._job(cost_model, "a", num_workers=6))
        scheduler.submit(self._job(cost_model, "b", num_workers=6))
        result = scheduler.run()
        assert result.jobs["a"].queueing_delay == 0.0
        assert result.jobs["b"].queueing_delay > 0.0
        assert result.jobs["b"].start_time == pytest.approx(result.jobs["a"].finish_time)

    def test_fifo_packs_round_robin_spreads(self, cost_model, cluster):
        packed = ClusterScheduler(cluster, placement="fifo")
        packed.submit(self._job(cost_model, "a", num_workers=4))
        machines_packed = {name.split(":")[0] for name in packed.run().jobs["a"].worker_names}

        spread = ClusterScheduler(cluster, placement="round_robin")
        spread.submit(self._job(cost_model, "a", num_workers=4))
        machines_spread = {name.split(":")[0] for name in spread.run().jobs["a"].worker_names}

        assert len(machines_packed) == 2   # 2 GPUs per machine -> 2 machines
        assert len(machines_spread) == 4   # one GPU from each of 4 machines

    def test_straggler_slows_the_hosting_job(self, cost_model, cluster):
        fast = ClusterScheduler(cluster, placement="fifo")
        fast.submit(self._job(cost_model, "a", num_workers=4))
        baseline = fast.run().jobs["a"].finish_time

        slow = ClusterScheduler(cluster, placement="fifo")
        slow.set_gpu_speed("node0:gpu0", 0.5, at_time=0.0)
        slow.submit(self._job(cost_model, "a", num_workers=4))
        delayed = slow.run().jobs["a"].finish_time
        assert delayed > baseline

    def test_elastic_leave_frees_gpus_for_queued_job(self, cost_model, cluster):
        scheduler = ClusterScheduler(cluster, placement="fifo")
        scheduler.submit(self._job(cost_model, "big", num_workers=10, iterations=50))
        scheduler.submit(self._job(cost_model, "waiting", num_workers=4, iterations=2))
        single = EventDrivenEngine(cluster).simulate_iteration(
            cost_model, workers=cluster.workers(5, 2)).total
        scheduler.resize_job("big", -4, at_time=single * 10)
        result = scheduler.run()
        assert result.jobs["big"].iterations_done == 50
        assert len(result.jobs["big"].worker_names) == 6
        # The waiting job got the released GPUs long before "big" finished.
        assert result.jobs["waiting"].start_time < result.jobs["big"].finish_time
        assert result.jobs["waiting"].iterations_done == 2

    def test_elastic_join_grows_worker_set(self, cost_model, cluster):
        scheduler = ClusterScheduler(cluster, placement="fifo")
        scheduler.submit(self._job(cost_model, "a", num_workers=2, iterations=40))
        single = EventDrivenEngine(cluster).simulate_iteration(
            cost_model, workers=cluster.workers(1, 2)).total
        scheduler.resize_job("a", +2, at_time=single * 5)
        result = scheduler.run()
        assert len(result.jobs["a"].worker_names) == 4
        assert result.jobs["a"].iterations_done == 40

    def test_deterministic_across_runs(self, cost_model, cluster):
        def scenario():
            scheduler = ClusterScheduler(paper_testbed_cluster(), placement="round_robin", seed=7)
            scheduler.set_gpu_speed("node1:gpu0", 0.8, at_time=0.0)
            scheduler.submit(self._job(cost_model, "a", num_workers=4, iterations=6,
                                       policy=SchedulePolicy.EGERIA, frozen_prefix=2, cached_fp=True))
            scheduler.submit(self._job(cost_model, "b", num_workers=4, iterations=6))
            scheduler.submit(self._job(cost_model, "c", num_workers=4, iterations=3))
            return scheduler.run().as_dict()

        assert scenario() == scenario()

    def test_validation_errors(self, cost_model, cluster):
        scheduler = ClusterScheduler(cluster)
        with pytest.raises(ValueError):
            ClusterScheduler(cluster, placement="random")
        with pytest.raises(ValueError):
            scheduler.submit(self._job(cost_model, "a", num_workers=99))
        scheduler.submit(self._job(cost_model, "a"))
        with pytest.raises(ValueError):
            scheduler.submit(self._job(cost_model, "a"))

    def test_single_machine_job_unaffected_by_fabric_contention(self, cost_model, cluster):
        alone = ClusterScheduler(paper_testbed_cluster(), placement="fifo")
        alone.submit(self._job(cost_model, "solo", num_workers=2, iterations=3))
        solo_alone = alone.run().jobs["solo"].iteration_seconds[0]

        mixed = ClusterScheduler(paper_testbed_cluster(), placement="fifo")
        mixed.submit(self._job(cost_model, "m1", num_workers=4, iterations=3))
        mixed.submit(self._job(cost_model, "m2", num_workers=4, iterations=3))
        mixed.submit(self._job(cost_model, "solo", num_workers=2, iterations=3))
        solo_mixed = mixed.run().jobs["solo"].iteration_seconds[0]
        # The solo job never crosses the leaf-spine fabric, so concurrent
        # multi-machine jobs must not scale its intra-machine all-reduce.
        assert solo_mixed == solo_alone

    def test_noop_resize_does_not_restart_iteration(self, cost_model, cluster):
        base = ClusterScheduler(paper_testbed_cluster())
        base.submit(self._job(cost_model, "a", num_workers=10, iterations=5))
        baseline_finish = base.run().jobs["a"].finish_time

        grown = ClusterScheduler(paper_testbed_cluster())
        grown.submit(self._job(cost_model, "a", num_workers=10, iterations=5))
        grown.resize_job("a", +2, at_time=baseline_finish / 10)  # cluster full: no-op
        assert grown.run().jobs["a"].finish_time == baseline_finish

        shrunk = ClusterScheduler(paper_testbed_cluster())
        shrunk.submit(self._job(cost_model, "b", num_workers=1, iterations=5))
        shrunk.resize_job("b", -3, at_time=1e-6)  # 1-worker job: nothing releasable
        lone = ClusterScheduler(paper_testbed_cluster())
        lone.submit(self._job(cost_model, "b", num_workers=1, iterations=5))
        assert shrunk.run().jobs["b"].finish_time == lone.run().jobs["b"].finish_time

    def test_utilization_bounded(self, cost_model, cluster):
        scheduler = ClusterScheduler(cluster)
        scheduler.submit(self._job(cost_model, "a", num_workers=4, iterations=8))
        result = scheduler.run()
        for value in result.utilization().values():
            assert 0.0 <= value <= 1.0 + 1e-9


class TestTrainerEventBackend:
    def _trainer(self):
        full = make_dataset("synthetic_cifar10", num_samples=48, num_classes=4,
                            image_size=8, noise=0.8, seed=0)
        train_ds, eval_ds = full.split(eval_fraction=0.25)
        train_loader = DataLoader(train_ds, batch_size=8, seed=0)
        model = models.resnet8(num_classes=4, width=0.5, seed=0)
        optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        return VanillaTrainer(model, ClassificationTask(), train_loader, None, optimizer)

    def test_event_backend_is_the_default(self):
        trainer = self._trainer()
        assert trainer.sim_backend == "event"
        assert trainer.sim_engine is not None

    def test_event_backend_matches_closed_form_within_5pct(self):
        closed = self._trainer()
        closed.configure_simulation(backend="closed_form")
        closed.fit(num_epochs=2)
        event = self._trainer()
        event.configure_simulation(backend="event")
        event.fit(num_epochs=2)
        assert event.simulated_time == pytest.approx(closed.simulated_time, rel=0.05)

    def test_event_backend_with_cluster_workers_adds_comm(self):
        cluster = paper_testbed_cluster()
        trainer = self._trainer()
        trainer.configure_simulation(backend="event", engine=EventDrivenEngine(cluster),
                                     workers=cluster.workers(2, 2))
        trainer.fit(num_epochs=1)
        single = self._trainer()
        single.configure_simulation(backend="event")
        single.fit(num_epochs=1)
        assert trainer.simulated_time > single.simulated_time

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            self._trainer().configure_simulation(backend="quantum")

    def test_multi_worker_without_cluster_engine_rejected(self):
        # Without an all-reduce model the buckets would silently cost zero.
        with pytest.raises(ValueError):
            self._trainer().configure_simulation(backend="event", workers=["gpu0", "gpu1"])
